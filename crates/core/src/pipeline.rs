//! The end-to-end analysis pipeline: dataset → graphs → refinement →
//! detection → characterization → profitability, mirroring the paper's
//! methodology from §III through §VI.
//!
//! The pipeline is staged: each step is a [`PipelineStage`] that reads and
//! writes artifacts on a shared [`AnalysisContext`], and the driver
//! ([`analyze_with`]) times every stage into a [`StageMetrics`] record.
//!
//! Artifacts flow through in dense-id form: the dataset stage interns every
//! entity once, the graph table is indexed by [`ids::NftKey`]
//! (`graphs[key.index()]` — no keyed map anywhere), and refinement/detection
//! carry [`DenseCandidate`]/[`DenseDetectionOutcome`]. Resolution back to
//! addresses happens exactly once, in [`AnalysisContext::into_report`], so
//! the public [`AnalysisReport`] is identical to the address-keyed
//! pipeline's output bit for bit.

use std::time::{Duration, Instant};

use ethsim::Chain;
use labels::LabelRegistry;
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};

use crate::characterize::{characterize_with, Characterization};
use crate::dataset::{Dataset, MarketplaceVolume};
use crate::detect::{DenseDetectionOutcome, DetectionOutcome, Detector};
use crate::parallel::Executor;
use crate::profit::{analyze_resales_with, analyze_rewards_with, ResaleReport, RewardReport};
use crate::refine::{DenseCandidate, RefinementReport, Refiner};
use crate::txgraph::NftGraph;

/// Everything the pipeline needs to read: the chain, the label registry, the
/// marketplace directory and the price oracle — the same inputs the paper's
/// authors assembled from Geth, Etherscan and price feeds.
#[derive(Clone, Copy)]
pub struct AnalysisInput<'a> {
    /// The chain to analyze.
    pub chain: &'a Chain,
    /// Etherscan-style account labels.
    pub labels: &'a LabelRegistry,
    /// Marketplace address directory.
    pub directory: &'a MarketplaceDirectory,
    /// Daily USD price series.
    pub oracle: &'a PriceOracle,
}

/// Tunables for one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisOptions {
    /// Thread budget for the parallel stages; `0` means one thread per
    /// available core. Results are bit-identical at any value.
    pub threads: usize,
    /// Whether to record per-stage [`StageMetrics`] into the report.
    pub collect_metrics: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions { threads: 0, collect_metrics: true }
    }
}

impl AnalysisOptions {
    /// Options pinned to a single thread (useful for deterministic timing
    /// baselines and differential tests).
    pub fn single_threaded() -> Self {
        AnalysisOptions { threads: 1, ..AnalysisOptions::default() }
    }
}

/// Instrumentation record for one executed stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name, as reported by [`PipelineStage::name`].
    pub stage: String,
    /// Wall-clock time of the stage in nanoseconds (always nonzero).
    pub wall_time_ns: u64,
    /// Items the stage consumed (stage-specific unit, e.g. graphs in).
    pub items_in: usize,
    /// Items the stage produced (e.g. surviving candidates).
    pub items_out: usize,
    /// Threads the stage actually used.
    pub threads: usize,
}

impl StageMetrics {
    /// The stage's wall-clock time as a [`Duration`].
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(self.wall_time_ns)
    }
}

/// What a stage reports back to the driver for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageIo {
    /// Items consumed.
    pub items_in: usize,
    /// Items produced.
    pub items_out: usize,
    /// Threads actually used (1 for serial stages).
    pub threads_used: usize,
}

/// Shared state the stages read and write: the immutable inputs, the thread
/// executor, and every intermediate artifact of the methodology.
///
/// Artifacts are populated in pipeline order; a stage that runs before its
/// prerequisites panics with the name of the missing artifact. The standard
/// order is the one [`standard_stages`] returns.
pub struct AnalysisContext<'a> {
    /// The immutable analysis inputs.
    pub input: AnalysisInput<'a>,
    /// The shared fork–join executor all parallel stages draw threads from.
    pub executor: Executor,
    dataset: Option<Dataset>,
    graphs: Option<Vec<NftGraph>>,
    candidates: Option<Vec<DenseCandidate>>,
    refinement: Option<RefinementReport>,
    detection: Option<DenseDetectionOutcome>,
    characterization: Option<Characterization>,
    rewards: Option<RewardReport>,
    resales: Option<ResaleReport>,
}

impl<'a> AnalysisContext<'a> {
    /// A fresh context with no artifacts computed yet.
    pub fn new(input: AnalysisInput<'a>, options: AnalysisOptions) -> Self {
        AnalysisContext {
            input,
            executor: Executor::new(options.threads),
            dataset: None,
            graphs: None,
            candidates: None,
            refinement: None,
            detection: None,
            characterization: None,
            rewards: None,
            resales: None,
        }
    }

    fn expect<T>(artifact: Option<T>, name: &str) -> T {
        artifact.unwrap_or_else(|| panic!("pipeline stage ran before `{name}` was computed"))
    }

    /// The §III dataset (requires `BuildDataset`).
    pub fn dataset(&self) -> &Dataset {
        Self::expect(self.dataset.as_ref(), "dataset")
    }

    /// The per-NFT graphs, indexed by [`ids::NftKey`] (requires `BuildGraphs`).
    pub fn graphs(&self) -> &[NftGraph] {
        Self::expect(self.graphs.as_deref(), "graphs")
    }

    /// The refined dense candidates (requires `Refine`).
    pub fn candidates(&self) -> &[DenseCandidate] {
        Self::expect(self.candidates.as_deref(), "candidates")
    }

    /// The dense detection outcome (requires `Detect`). The resolved
    /// [`DetectionOutcome`] is produced once, at report assembly.
    pub fn detection(&self) -> &DenseDetectionOutcome {
        Self::expect(self.detection.as_ref(), "detection")
    }

    /// Assemble the final report once every stage has run — the single
    /// point where dense ids resolve back to addresses.
    fn into_report(self, stage_metrics: Vec<StageMetrics>) -> AnalysisReport {
        let input = self.input;
        let dataset = Self::expect(self.dataset, "dataset");
        let detection = Self::expect(self.detection, "detection").resolve(&dataset.interner);
        AnalysisReport {
            table1: dataset.marketplace_volumes(input.directory, input.oracle),
            dataset_nfts: dataset.nft_count(),
            dataset_transfers: dataset.transfer_count(),
            raw_transfer_events: dataset.raw_transfer_events,
            compliant_contracts: dataset.compliant_contracts.len(),
            non_compliant_contracts: dataset.non_compliant_contracts.len(),
            refinement: Self::expect(self.refinement, "refinement"),
            detection,
            characterization: Self::expect(self.characterization, "characterization"),
            rewards: Self::expect(self.rewards, "rewards"),
            resales: Self::expect(self.resales, "resales"),
            stage_metrics,
        }
    }
}

/// One step of the methodology, run by [`analyze_with`] over the shared
/// [`AnalysisContext`]. Implementations must be pure with respect to the
/// context: read prerequisite artifacts, write their own, touch nothing else.
pub trait PipelineStage {
    /// Stable stage name, used in [`StageMetrics::stage`].
    fn name(&self) -> &'static str;
    /// Execute the stage against the context.
    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo;
}

/// §III: collect ERC-721 transfers, apply the compliance probe, intern every
/// entity and annotate prices and marketplaces — the two-phase ingest
/// pipeline (parallel block-sharded decode, serial ordered commit) fanned
/// out over the shared executor. Items: raw transfer logs in, compliant
/// transfers out.
pub struct BuildDataset;

impl PipelineStage for BuildDataset {
    fn name(&self) -> &'static str {
        "build_dataset"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let mut dataset = Dataset::default();
        let (_, metrics) = dataset.ingest_blocks_instrumented(
            ctx.input.chain,
            ctx.input.directory,
            ethsim::BlockNumber(0),
            ctx.input.chain.current_block_number(),
            &ctx.executor,
        );
        let io = StageIo {
            items_in: dataset.raw_transfer_events,
            items_out: dataset.transfer_count(),
            threads_used: metrics.threads,
        };
        ctx.dataset = Some(dataset);
        io
    }
}

/// §IV-A: one directed multigraph per NFT, built in parallel over the
/// columnar store. Items: compliant transfers in, NFT graphs out.
pub struct BuildGraphs;

impl PipelineStage for BuildGraphs {
    fn name(&self) -> &'static str {
        "build_graphs"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let dataset = ctx.dataset();
        let graphs = NftGraph::from_dataset_with(dataset, &ctx.executor);
        let io = StageIo {
            items_in: dataset.transfer_count(),
            items_out: graphs.len(),
            threads_used: ctx.executor.threads_for(graphs.len()),
        };
        ctx.graphs = Some(graphs);
        io
    }
}

/// §IV-B: SCC search plus service-account, contract-account and zero-volume
/// filtering, in parallel over the graphs. Items: graphs in, surviving
/// candidates out.
pub struct Refine;

impl PipelineStage for Refine {
    fn name(&self) -> &'static str {
        "refine"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let graphs = ctx.graphs();
        let refiner = Refiner::new(ctx.input.chain, ctx.input.labels, &ctx.dataset().interner);
        let (candidates, refinement) = refiner.refine_with(graphs, &ctx.executor);
        let io = StageIo {
            items_in: graphs.len(),
            items_out: candidates.len(),
            threads_used: ctx.executor.threads_for(graphs.len()),
        };
        ctx.candidates = Some(candidates);
        ctx.refinement = Some(refinement);
        io
    }
}

/// §IV-C/D: the five confirmation signals, in parallel over the candidates.
/// The graph table is already `NftKey`-indexed, so the detector's
/// cross-component lookups are plain `Vec` indexing. Items: candidates in,
/// confirmed activities out.
pub struct Detect;

impl PipelineStage for Detect {
    fn name(&self) -> &'static str {
        "detect"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let candidates = ctx.candidates();
        let detector = Detector::new(ctx.input.chain, ctx.input.labels, &ctx.dataset().interner);
        let detection = detector.detect_with(candidates, ctx.graphs(), &ctx.executor);
        let io = StageIo {
            items_in: candidates.len(),
            items_out: detection.confirmed.len(),
            threads_used: ctx.executor.threads_for(candidates.len()),
        };
        ctx.detection = Some(detection);
        io
    }
}

/// §V: volumes, lifetimes, participation patterns, serial traders. Items:
/// confirmed activities in, one characterization out.
pub struct Characterize;

impl PipelineStage for Characterize {
    fn name(&self) -> &'static str {
        "characterize"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let confirmed = &ctx.detection().confirmed;
        let characterization = characterize_with(
            confirmed,
            ctx.dataset(),
            ctx.input.directory,
            ctx.input.oracle,
            &ctx.executor,
        );
        let io = StageIo {
            items_in: confirmed.len(),
            items_out: 1,
            threads_used: ctx.executor.threads_for(confirmed.len()),
        };
        ctx.characterization = Some(characterization);
        io
    }
}

/// §VI: reward-system exploitation and resale profitability. Items:
/// confirmed activities in, per-activity profit assessments out.
pub struct Profit;

impl PipelineStage for Profit {
    fn name(&self) -> &'static str {
        "profit"
    }

    fn run(&self, ctx: &mut AnalysisContext<'_>) -> StageIo {
        let confirmed = &ctx.detection().confirmed;
        let input = ctx.input;
        let interner = &ctx.dataset().interner;
        let rewards = analyze_rewards_with(
            confirmed,
            input.chain,
            input.directory,
            input.oracle,
            interner,
            &ctx.executor,
        );
        let resales = analyze_resales_with(
            confirmed,
            input.chain,
            input.directory,
            input.oracle,
            ctx.graphs(),
            interner,
            &ctx.executor,
        );
        let io = StageIo {
            items_in: confirmed.len(),
            items_out: rewards.outcomes.len() + resales.outcomes.len(),
            threads_used: ctx.executor.threads_for(confirmed.len()),
        };
        ctx.rewards = Some(rewards);
        ctx.resales = Some(resales);
        io
    }
}

/// The six stages of the paper's methodology, in execution order.
pub fn standard_stages() -> Vec<Box<dyn PipelineStage>> {
    vec![
        Box::new(BuildDataset),
        Box::new(BuildGraphs),
        Box::new(Refine),
        Box::new(Detect),
        Box::new(Characterize),
        Box::new(Profit),
    ]
}

/// The complete analysis output; every table and figure of the paper is
/// derived from the fields of this struct. Fully resolved: no dense id
/// appears anywhere in the report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Table I: per-marketplace dataset totals.
    pub table1: Vec<MarketplaceVolume>,
    /// Number of distinct NFTs with at least one (compliant) transfer.
    pub dataset_nfts: usize,
    /// Number of compliant ERC-721 transfers.
    pub dataset_transfers: usize,
    /// Number of ERC-721-shaped transfer logs before the compliance filter.
    pub raw_transfer_events: usize,
    /// ERC-721 contracts passing the compliance probe.
    pub compliant_contracts: usize,
    /// Contracts emitting ERC-721-shaped logs that failed the probe.
    pub non_compliant_contracts: usize,
    /// §IV-B: counts after each refinement stage.
    pub refinement: RefinementReport,
    /// §IV-C/D: confirmed activities and method overlap (Fig. 2).
    pub detection: DetectionOutcome,
    /// §V: volumes, temporal behaviour, patterns, serial traders
    /// (Tables II, Figs. 3–7).
    pub characterization: Characterization,
    /// §VI-A: reward-system profitability (Table III).
    pub rewards: RewardReport,
    /// §VI-B: resale profitability.
    pub resales: ResaleReport,
    /// Per-stage instrumentation (empty when
    /// [`AnalysisOptions::collect_metrics`] is off).
    pub stage_metrics: Vec<StageMetrics>,
}

/// Run the full pipeline with explicit options.
pub fn analyze_with(input: AnalysisInput<'_>, options: AnalysisOptions) -> AnalysisReport {
    let _run_span = obs::span!("core.analyze_ns");
    let _run_trace = obs::trace::span("core.analyze");
    let mut ctx = AnalysisContext::new(input, options);
    let mut stage_metrics = Vec::new();
    for stage in standard_stages() {
        let mut stage_trace = if obs::recording() {
            obs::trace::span_dynamic(&format!("stage.{}", stage.name()))
        } else {
            obs::trace::span_dynamic("")
        };
        let started = Instant::now();
        let io = stage.run(&mut ctx);
        let wall_time = started.elapsed();
        stage_trace.attr("items_in", io.items_in as u64);
        stage_trace.attr("items_out", io.items_out as u64);
        stage_trace.attr("threads", io.threads_used as u64);
        stage_trace.finish();
        if obs::recording() {
            // Stage names are not literals here, so this goes through the
            // dynamic registry lookup — six lookups per run, negligible.
            obs::histogram(&format!("stage.{}_ns", stage.name())).record_duration(wall_time);
        }
        if options.collect_metrics {
            stage_metrics.push(StageMetrics {
                stage: stage.name().to_string(),
                // Clamp to 1 ns: a zero reading would be indistinguishable
                // from "not measured" in downstream tooling.
                wall_time_ns: u64::try_from(wall_time.as_nanos().max(1)).unwrap_or(u64::MAX),
                items_in: io.items_in,
                items_out: io.items_out,
                threads: io.threads_used,
            });
        }
    }
    ctx.into_report(stage_metrics)
}

/// Run the full pipeline with default options (all cores, metrics on).
/// Thin compatibility wrapper over [`analyze_with`].
pub fn analyze(input: AnalysisInput<'_>) -> AnalysisReport {
    analyze_with(input, AnalysisOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use workload::{WorkloadConfig, World};

    fn analyze_world(world: &World) -> AnalysisReport {
        analyze(AnalysisInput {
            chain: &world.chain,
            labels: &world.labels,
            directory: &world.directory,
            oracle: &world.oracle,
        })
    }

    #[test]
    fn pipeline_detects_most_planted_activities() {
        let world = World::generate(WorkloadConfig::small(2024)).expect("world");
        let report = analyze_world(&world);

        // Recall: how many planted NFTs were flagged.
        let planted: HashSet<tokens::NftId> = world.truth.iter().map(|t| t.nft).collect();
        let detected: HashSet<tokens::NftId> =
            report.detection.confirmed.iter().map(|a| a.nft()).collect();
        let recalled = planted.intersection(&detected).count();
        let recall = recalled as f64 / planted.len() as f64;
        assert!(
            recall > 0.85,
            "recall {recall:.2} too low: {recalled}/{} planted NFTs detected",
            planted.len()
        );

        // Precision proxy: nothing outside the planted set plus the
        // candidates that genuinely look suspicious should be confirmed; at
        // minimum, legit traders' NFTs must not dominate the detections.
        let false_positives = detected.difference(&planted).count();
        assert!(
            false_positives * 10 <= detected.len().max(1),
            "too many false positives: {false_positives} of {}",
            detected.len()
        );

        // Structural sanity.
        assert!(report.dataset_nfts > 0);
        assert!(report.raw_transfer_events >= report.dataset_transfers);
        assert!(
            report.refinement.initial.components >= report.refinement.after_zero_volume.components
        );
        assert!(report.detection.venn.total() > 0);
        assert_eq!(report.table1.len(), 6);
    }

    #[test]
    fn zero_volume_shuffles_and_noncompliant_contracts_are_not_detected() {
        let world = World::generate(WorkloadConfig::small(77)).expect("world");
        let report = analyze_world(&world);
        // Non-compliant contracts are excluded at the dataset level: they are
        // counted, but none of their NFTs can appear among the detections.
        assert!(report.non_compliant_contracts >= 1);
        let compliant_collections: HashSet<ethsim::Address> =
            world.collections.iter().copied().collect();
        for activity in &report.detection.confirmed {
            assert!(
                compliant_collections.contains(&activity.nft().contract),
                "detected activity on a non-compliant or unknown collection"
            );
        }
        // No confirmed activity may sit on a shuffle clique: shuffles carry no
        // value, so the zero-volume filter must have dropped them.
        for activity in &report.detection.confirmed {
            assert!(
                !activity.candidate.volume.is_zero(),
                "confirmed activity with zero volume: {:?}",
                activity.nft()
            );
        }
    }

    #[test]
    fn stage_metrics_cover_every_stage_with_nonzero_wall_time() {
        let world = World::generate(WorkloadConfig::small(5)).expect("world");
        let report = analyze_world(&world);
        let names: Vec<&str> = report.stage_metrics.iter().map(|m| m.stage.as_str()).collect();
        assert_eq!(
            names,
            ["build_dataset", "build_graphs", "refine", "detect", "characterize", "profit"]
        );
        for metrics in &report.stage_metrics {
            assert!(metrics.wall_time_ns > 0, "stage {} reported zero time", metrics.stage);
            assert!(metrics.threads >= 1, "stage {} reported zero threads", metrics.stage);
            assert!(metrics.wall_time() > Duration::ZERO);
        }
        // Item counts chain together: graphs out feeds refinement in, and so on.
        assert_eq!(report.stage_metrics[1].items_out, report.stage_metrics[2].items_in);
        assert_eq!(report.stage_metrics[2].items_out, report.stage_metrics[3].items_in);
        assert_eq!(report.stage_metrics[3].items_out, report.stage_metrics[4].items_in);
    }

    #[test]
    fn metrics_collection_can_be_disabled() {
        let world = World::generate(WorkloadConfig::small(5)).expect("world");
        let report = analyze_with(
            AnalysisInput {
                chain: &world.chain,
                labels: &world.labels,
                directory: &world.directory,
                oracle: &world.oracle,
            },
            AnalysisOptions { collect_metrics: false, ..AnalysisOptions::default() },
        );
        assert!(report.stage_metrics.is_empty());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let world = World::generate(WorkloadConfig::small(11)).expect("world");
        let input = AnalysisInput {
            chain: &world.chain,
            labels: &world.labels,
            directory: &world.directory,
            oracle: &world.oracle,
        };
        let baseline = analyze_with(input, AnalysisOptions::single_threaded());
        for threads in [2, 7, 0] {
            let report =
                analyze_with(input, AnalysisOptions { threads, ..AnalysisOptions::default() });
            assert_eq!(
                format!("{:?}", baseline.detection),
                format!("{:?}", report.detection),
                "detection diverged at threads = {threads}"
            );
            assert_eq!(baseline.refinement, report.refinement);
            assert_eq!(baseline.dataset_transfers, report.dataset_transfers);
        }
    }
}
