//! The end-to-end analysis pipeline: dataset → graphs → refinement →
//! detection → characterization → profitability, mirroring the paper's
//! methodology from §III through §VI.

use std::collections::HashMap;

use ethsim::Chain;
use labels::LabelRegistry;
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::characterize::{characterize, Characterization};
use crate::dataset::{Dataset, MarketplaceVolume};
use crate::detect::{DetectionOutcome, Detector};
use crate::profit::{analyze_resales, analyze_rewards, ResaleReport, RewardReport};
use crate::refine::{Refiner, RefinementReport};
use crate::txgraph::NftGraph;

/// Everything the pipeline needs to read: the chain, the label registry, the
/// marketplace directory and the price oracle — the same inputs the paper's
/// authors assembled from Geth, Etherscan and price feeds.
#[derive(Clone, Copy)]
pub struct AnalysisInput<'a> {
    /// The chain to analyze.
    pub chain: &'a Chain,
    /// Etherscan-style account labels.
    pub labels: &'a LabelRegistry,
    /// Marketplace address directory.
    pub directory: &'a MarketplaceDirectory,
    /// Daily USD price series.
    pub oracle: &'a PriceOracle,
}

/// The complete analysis output; every table and figure of the paper is
/// derived from the fields of this struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Table I: per-marketplace dataset totals.
    pub table1: Vec<MarketplaceVolume>,
    /// Number of distinct NFTs with at least one (compliant) transfer.
    pub dataset_nfts: usize,
    /// Number of compliant ERC-721 transfers.
    pub dataset_transfers: usize,
    /// Number of ERC-721-shaped transfer logs before the compliance filter.
    pub raw_transfer_events: usize,
    /// ERC-721 contracts passing the compliance probe.
    pub compliant_contracts: usize,
    /// Contracts emitting ERC-721-shaped logs that failed the probe.
    pub non_compliant_contracts: usize,
    /// §IV-B: counts after each refinement stage.
    pub refinement: RefinementReport,
    /// §IV-C/D: confirmed activities and method overlap (Fig. 2).
    pub detection: DetectionOutcome,
    /// §V: volumes, temporal behaviour, patterns, serial traders
    /// (Tables II, Figs. 3–7).
    pub characterization: Characterization,
    /// §VI-A: reward-system profitability (Table III).
    pub rewards: RewardReport,
    /// §VI-B: resale profitability.
    pub resales: ResaleReport,
}

/// Run the full pipeline.
pub fn analyze(input: AnalysisInput<'_>) -> AnalysisReport {
    let dataset = Dataset::build(input.chain, input.directory);
    let graphs = NftGraph::from_dataset(&dataset);
    let refiner = Refiner::new(input.chain, input.labels);
    let (candidates, refinement) = refiner.refine(&graphs);
    let graph_map: HashMap<NftId, NftGraph> =
        graphs.into_iter().map(|graph| (graph.nft, graph)).collect();
    let detector = Detector::new(input.chain, input.labels);
    let detection = detector.detect(&candidates, &graph_map);
    let characterization =
        characterize(&detection.confirmed, &dataset, input.directory, input.oracle);
    let rewards = analyze_rewards(&detection.confirmed, input.chain, input.directory, input.oracle);
    let resales = analyze_resales(
        &detection.confirmed,
        input.chain,
        input.directory,
        input.oracle,
        &graph_map,
    );

    AnalysisReport {
        table1: dataset.marketplace_volumes(input.directory, input.oracle),
        dataset_nfts: dataset.nft_count(),
        dataset_transfers: dataset.transfer_count(),
        raw_transfer_events: dataset.raw_transfer_events,
        compliant_contracts: dataset.compliant_contracts.len(),
        non_compliant_contracts: dataset.non_compliant_contracts.len(),
        refinement,
        detection,
        characterization,
        rewards,
        resales,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use workload::{WorkloadConfig, World};

    fn analyze_world(world: &World) -> AnalysisReport {
        analyze(AnalysisInput {
            chain: &world.chain,
            labels: &world.labels,
            directory: &world.directory,
            oracle: &world.oracle,
        })
    }

    #[test]
    fn pipeline_detects_most_planted_activities() {
        let world = World::generate(WorkloadConfig::small(2024)).expect("world");
        let report = analyze_world(&world);

        // Recall: how many planted NFTs were flagged.
        let planted: HashSet<tokens::NftId> = world.truth.iter().map(|t| t.nft).collect();
        let detected: HashSet<tokens::NftId> =
            report.detection.confirmed.iter().map(|a| a.nft()).collect();
        let recalled = planted.intersection(&detected).count();
        let recall = recalled as f64 / planted.len() as f64;
        assert!(
            recall > 0.85,
            "recall {recall:.2} too low: {recalled}/{} planted NFTs detected",
            planted.len()
        );

        // Precision proxy: nothing outside the planted set plus the
        // candidates that genuinely look suspicious should be confirmed; at
        // minimum, legit traders' NFTs must not dominate the detections.
        let false_positives = detected.difference(&planted).count();
        assert!(
            false_positives * 10 <= detected.len().max(1),
            "too many false positives: {false_positives} of {}",
            detected.len()
        );

        // Structural sanity.
        assert!(report.dataset_nfts > 0);
        assert!(report.raw_transfer_events >= report.dataset_transfers);
        assert!(report.refinement.initial.components >= report.refinement.after_zero_volume.components);
        assert!(report.detection.venn.total() > 0);
        assert_eq!(report.table1.len(), 6);
    }

    #[test]
    fn zero_volume_shuffles_and_noncompliant_contracts_are_not_detected() {
        let world = World::generate(WorkloadConfig::small(77)).expect("world");
        let report = analyze_world(&world);
        // Non-compliant contracts are excluded at the dataset level: they are
        // counted, but none of their NFTs can appear among the detections.
        assert!(report.non_compliant_contracts >= 1);
        let compliant_collections: HashSet<ethsim::Address> =
            world.collections.iter().copied().collect();
        for activity in &report.detection.confirmed {
            assert!(
                compliant_collections.contains(&activity.nft().contract),
                "detected activity on a non-compliant or unknown collection"
            );
        }
        // No confirmed activity may sit on a shuffle clique: shuffles carry no
        // value, so the zero-volume filter must have dropped them.
        for activity in &report.detection.confirmed {
            assert!(
                !activity.candidate.volume.is_zero(),
                "confirmed activity with zero volume: {:?}",
                activity.nft()
            );
        }
    }
}
