//! # washtrade — NFT wash-trading detection, characterization and
//! profitability analysis
//!
//! This crate is a from-scratch Rust reproduction of the measurement pipeline
//! of *"A Game of NFTs: Characterizing NFT Wash Trading in the Ethereum
//! Blockchain"* (La Morgia, Mei, Mongardini, Nemmi — ICDCS 2023). It consumes
//! an Ethereum-like chain (the [`ethsim`] substrate, populated either by the
//! calibrated `workload` generator or by any other producer of transactions
//! and ERC-721 transfer logs) and runs the paper's methodology end to end:
//!
//! 1. [`dataset`] — collect ERC-721 transfer events by log shape, filter
//!    contracts through the ERC-165 compliance probe, annotate each transfer
//!    with the amount paid and the marketplace interacted with (§III). The
//!    scan runs as a two-phase pipeline ([`ingest`]): parallel block-sharded
//!    decode, then a serial order-preserving commit that keeps id assignment
//!    bit-identical at any thread count.
//! 2. [`txgraph`] — build the per-NFT directed multigraph of sales (§IV-A).
//! 3. [`refine`] — drop service accounts, contract accounts and zero-volume
//!    components from the suspicious strongly connected components (§IV-B).
//! 4. [`detect`] — confirm wash trading through five signals: zero-risk
//!    position, common funder, common exit, self-trades and leveraging of
//!    previously confirmed account sets; compare the methods (§IV-C/D).
//! 5. [`characterize`] — volumes per marketplace and collection, lifetimes,
//!    participation patterns, serial traders (§V, Tables II, Figs. 3–7).
//! 6. [`profit`] — reward-system exploitation (Table III) and resale
//!    profitability (§VI).
//!
//! [`pipeline::analyze`] chains all of the above as six [`PipelineStage`]s
//! over a shared [`pipeline::AnalysisContext`], timing each stage into the
//! report's [`StageMetrics`]; the parallel stages share the [`parallel`]
//! fork–join executor. [`report`] renders each table and figure as text.
//!
//! The analysis layers run on **dense interned ids** (the `ids` crate):
//! the dataset stage maps every account, NFT and marketplace to a `u32`
//! once at ingest and stores transfers in the columnar [`columns`] store;
//! graphs, refinement, detection, characterization and profit all index
//! `Vec`s by those ids, and addresses reappear exactly once, at report
//! assembly. See the README crate map for the intern-once /
//! resolve-at-report-boundary rule.
//!
//! ```no_run
//! use washtrade::pipeline::{analyze, AnalysisInput};
//! use workload::{WorkloadConfig, World};
//!
//! let world = World::generate(WorkloadConfig::small(42)).expect("world");
//! let report = analyze(AnalysisInput {
//!     chain: &world.chain,
//!     labels: &world.labels,
//!     directory: &world.directory,
//!     oracle: &world.oracle,
//! });
//! println!("{} confirmed wash-trading activities", report.detection.confirmed.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod columns;
pub mod dataset;
pub mod detect;
pub mod ingest;
pub mod parallel;
pub mod pipeline;
pub mod profit;
pub mod refine;
pub mod report;
pub mod stats;
pub mod txgraph;

pub use characterize::{characterize, Characterization};
pub use columns::{TransferColumns, TransferRow};
pub use dataset::{AppliedEntries, Dataset, MarketplaceVolume, NftTransfer};
pub use detect::{
    ConfirmedActivity, DenseActivity, DenseDetectionOutcome, DetectionOutcome, Detector, MethodSet,
    VennCounts,
};
pub use ingest::IngestMetrics;
pub use parallel::Executor;
pub use pipeline::{
    analyze, analyze_with, AnalysisInput, AnalysisOptions, AnalysisReport, PipelineStage,
    StageMetrics,
};
pub use profit::{analyze_resales, analyze_rewards, ResaleReport, RewardReport};
pub use refine::{
    aggregate_refinements, Candidate, DenseCandidate, NftRefinement, RefinementReport, Refiner,
};
pub use txgraph::{DenseTradeEdge, NftGraph, TradeEdge};
