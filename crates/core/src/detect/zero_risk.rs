//! The zero-risk position heuristic (§IV-C i).
//!
//! Wash trading is, by definition, a zero-risk manipulation: the colluding
//! set ends the operation without having changed its net market position.
//! Concretely, summing over the component's accounts the ETH received from
//! sales of the NFT minus the ETH spent buying it — over *every* trade of
//! that NFT touching the component, acquisitions from and disposals to
//! outsiders included, and factoring out gas — must come out to (almost)
//! exactly zero. Trades entirely inside the component always cancel; buying
//! the NFT from an outsider for value, or selling it onwards, breaks the
//! balance and therefore the zero-risk evidence.

use ethsim::Wei;
use ids::AccountId;

use crate::txgraph::NftGraph;

/// Tolerance below which a component's net position counts as zero:
/// 0.001 ETH absorbs rounding dust without masking real acquisitions.
pub const ZERO_RISK_TOLERANCE: Wei = Wei(1_000_000_000_000_000);

/// The component's net ETH position over all trades of the NFT that touch it
/// (positive = the component extracted value, negative = it injected value).
///
/// Walks each member's incident edge lists from the graph's CSR topology —
/// O(component degree), not O(all trades of the NFT) — so evaluating many
/// candidates on a heavily traded NFT no longer rescans the full edge set
/// per candidate. Every edge is visited once per member endpoint (an
/// internal trade contributes `+price` at its seller and `-price` at its
/// buyer, cancelling exactly), and the sum is exact integer arithmetic, so
/// the result is identical to a full-edge scan in any order.
pub fn net_position(graph: &NftGraph, accounts: &[AccountId]) -> i128 {
    let mut net: i128 = 0;
    for account in accounts {
        let Some(node) = graph.graph.node_id(account) else {
            continue;
        };
        for &edge in graph.graph.outgoing_edges(node) {
            net += graph.graph.edge_weight(edge).price.raw() as i128;
        }
        for &edge in graph.graph.incoming_edges(node) {
            net -= graph.graph.edge_weight(edge).price.raw() as i128;
        }
    }
    net
}

/// Whether the component holds a zero-risk position.
pub fn is_zero_risk(graph: &NftGraph, accounts: &[AccountId]) -> bool {
    net_position(graph, accounts).unsigned_abs() <= ZERO_RISK_TOLERANCE.raw()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::txgraph::tests::{dataset_of, ids_of, transfer};
    use ethsim::Address;
    use tokens::NftId;

    fn world(transfers: &[(&str, &str, f64)]) -> (Dataset, NftGraph) {
        let nft = NftId::new(Address::derived("c"), 1);
        let transfers: Vec<_> = transfers
            .iter()
            .enumerate()
            .map(|(i, (from, to, price))| transfer(nft, from, to, *price, (i as u64 + 1) * 100))
            .collect();
        let dataset = dataset_of(&transfers);
        let key = dataset.interner.nft_key(nft).unwrap();
        let graph = NftGraph::from_columns(key, &dataset.columns);
        (dataset, graph)
    }

    fn pair(dataset: &Dataset) -> Vec<AccountId> {
        ids_of(dataset, &["a", "b"])
    }

    #[test]
    fn minted_round_trip_is_zero_risk() {
        let (dataset, graph) = world(&[("null", "a", 0.0), ("a", "b", 3.0), ("b", "a", 3.0)]);
        assert!(is_zero_risk(&graph, &pair(&dataset)));
        assert_eq!(net_position(&graph, &pair(&dataset)), 0);
    }

    #[test]
    fn internal_trades_cancel_even_with_escalating_prices() {
        // Internal trades always cancel within the component, regardless of
        // price path; only flows across the component boundary matter.
        let (dataset, graph) = world(&[("null", "a", 0.0), ("a", "b", 1.0), ("b", "a", 5.0)]);
        assert!(is_zero_risk(&graph, &pair(&dataset)));
    }

    #[test]
    fn external_acquisition_breaks_zero_risk() {
        let (dataset, graph) = world(&[
            ("null", "seller", 0.0),
            ("seller", "a", 1.0), // bought from an outsider for 1 ETH
            ("a", "b", 3.0),
            ("b", "a", 3.0),
        ]);
        assert!(!is_zero_risk(&graph, &pair(&dataset)));
        assert_eq!(
            net_position(&graph, &pair(&dataset)),
            -(ethsim::Wei::from_eth(1.0).raw() as i128)
        );
    }

    #[test]
    fn external_resale_breaks_zero_risk() {
        let (dataset, graph) =
            world(&[("null", "a", 0.0), ("a", "b", 3.0), ("b", "a", 3.0), ("a", "victim", 10.0)]);
        assert!(!is_zero_risk(&graph, &pair(&dataset)));
        assert_eq!(
            net_position(&graph, &pair(&dataset)),
            ethsim::Wei::from_eth(10.0).raw() as i128
        );
    }

    #[test]
    fn free_mint_and_free_transfers_are_trivially_zero_risk() {
        let (dataset, graph) = world(&[("null", "a", 0.0), ("a", "b", 0.0), ("b", "a", 0.0)]);
        assert!(is_zero_risk(&graph, &pair(&dataset)));
    }
}
