//! The common-funder (§IV-C ii) and common-exit (§IV-C iii) heuristics.
//!
//! Colluding accounts are usually operated by one entity, which shows up in
//! the money flow around the manipulation: the accounts receive their initial
//! funds from a common account before the first wash trade, and sweep the
//! proceeds back to a common account afterwards. Exchange and DeFi addresses
//! are excluded from being common *external* funders/exits, because they fund
//! and receive from thousands of unrelated users.

use std::collections::{HashMap, HashSet};

use ethsim::{Address, Chain, Timestamp};
use labels::LabelRegistry;
use serde::{Deserialize, Serialize};

/// Whether the common account sits inside or outside the colluding set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// The common account is one of the colluding accounts.
    Internal,
    /// The common account is outside the colluding set.
    External,
}

/// Evidence produced by the funder or exit heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEvidence {
    /// Internal or external common account.
    pub kind: FlowKind,
    /// The common funder / exit account.
    pub account: Address,
    /// How many colluding accounts it funded / received from.
    pub degree: usize,
}

/// Find a common funder for the component: an account that sends ETH or
/// ERC-20 tokens (in transactions that move no NFT) to colluding accounts
/// *before* the first wash trade. An internal funder needs to fund at least
/// one other colluder; an external funder at least two, and must not be an
/// exchange or DeFi service.
pub fn common_funder(
    chain: &Chain,
    labels: &LabelRegistry,
    accounts: &[Address],
    first_trade: Timestamp,
) -> Option<FlowEvidence> {
    let set: HashSet<Address> = accounts.iter().copied().collect();
    let mut funded_by: HashMap<Address, HashSet<Address>> = HashMap::new();
    for &account in accounts {
        for tx in chain.transactions_of(account) {
            if tx.timestamp >= first_trade || !tx.is_funding_of(account) {
                continue;
            }
            // The funder is the transaction sender for plain ETH transfers and
            // the token sender for ERC-20 funding.
            let mut funders: Vec<Address> = vec![tx.from];
            for log in &tx.logs {
                if let Some(transfer) = log.decode_erc20_transfer() {
                    if transfer.to == account && transfer.amount > 0 {
                        funders.push(transfer.from);
                    }
                }
            }
            for funder in funders {
                if funder == account {
                    continue;
                }
                funded_by.entry(funder).or_default().insert(account);
            }
        }
    }

    // Prefer an internal funder (the paper finds them 4× as often). Degree
    // ties are broken towards the lowest address: `funded_by` is a HashMap,
    // so a plain max would pick whichever tied account iteration reached
    // last — different from run to run.
    let internal = funded_by
        .iter()
        .filter(|(funder, funded)| set.contains(funder) && !funded.is_empty())
        .max_by_key(|(funder, funded)| (funded.len(), std::cmp::Reverse(**funder)))
        .map(|(funder, funded)| FlowEvidence {
            kind: FlowKind::Internal,
            account: *funder,
            degree: funded.len(),
        });
    if internal.is_some() {
        return internal;
    }
    funded_by
        .iter()
        .filter(|(funder, funded)| {
            !set.contains(funder) && funded.len() >= 2 && !labels.is_exchange_or_defi(**funder)
        })
        .max_by_key(|(funder, funded)| (funded.len(), std::cmp::Reverse(**funder)))
        .map(|(funder, funded)| FlowEvidence {
            kind: FlowKind::External,
            account: *funder,
            degree: funded.len(),
        })
}

/// Find a common exit for the component: an account that receives ETH or
/// ERC-20 tokens from colluding accounts (in transactions that move no NFT)
/// *after* the last wash trade. An internal exit needs one sender, an
/// external exit at least two and must not be an exchange or DeFi service.
pub fn common_exit(
    chain: &Chain,
    labels: &LabelRegistry,
    accounts: &[Address],
    last_trade: Timestamp,
) -> Option<FlowEvidence> {
    let set: HashSet<Address> = accounts.iter().copied().collect();
    let mut received_from: HashMap<Address, HashSet<Address>> = HashMap::new();
    for &account in accounts {
        for tx in chain.transactions_of(account) {
            if tx.timestamp <= last_trade {
                continue;
            }
            if tx.logs.iter().any(|log| log.is_erc721_transfer()) {
                continue;
            }
            let mut recipients: Vec<Address> = Vec::new();
            if tx.from == account && !tx.value.is_zero() {
                if let Some(to) = tx.to {
                    recipients.push(to);
                }
            }
            for transfer in &tx.internal_transfers {
                if transfer.from == account && !transfer.value.is_zero() {
                    recipients.push(transfer.to);
                }
            }
            for log in &tx.logs {
                if let Some(transfer) = log.decode_erc20_transfer() {
                    if transfer.from == account && transfer.amount > 0 {
                        recipients.push(transfer.to);
                    }
                }
            }
            for recipient in recipients {
                if recipient == account {
                    continue;
                }
                received_from.entry(recipient).or_default().insert(account);
            }
        }
    }

    // Same deterministic tiebreak as the funder side: lowest address wins.
    let internal = received_from
        .iter()
        .filter(|(recipient, senders)| set.contains(recipient) && !senders.is_empty())
        .max_by_key(|(recipient, senders)| (senders.len(), std::cmp::Reverse(**recipient)))
        .map(|(recipient, senders)| FlowEvidence {
            kind: FlowKind::Internal,
            account: *recipient,
            degree: senders.len(),
        });
    if internal.is_some() {
        return internal;
    }
    received_from
        .iter()
        .filter(|(recipient, senders)| {
            !set.contains(recipient)
                && senders.len() >= 2
                && !labels.is_exchange_or_defi(**recipient)
        })
        .max_by_key(|(recipient, senders)| (senders.len(), std::cmp::Reverse(**recipient)))
        .map(|(recipient, senders)| FlowEvidence {
            kind: FlowKind::External,
            account: *recipient,
            degree: senders.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{TxRequest, Wei};
    use labels::LabelCategory;

    struct Setup {
        chain: Chain,
        labels: LabelRegistry,
        a: Address,
        b: Address,
    }

    fn setup() -> Setup {
        let mut chain = Chain::new(Timestamp::from_secs(1_000_000));
        let a = chain.create_eoa("washer-a").unwrap();
        let b = chain.create_eoa("washer-b").unwrap();
        chain.fund(a, Wei::from_eth(1.0));
        chain.fund(b, Wei::from_eth(1.0));
        Setup { chain, labels: LabelRegistry::new(), a, b }
    }

    fn gwei() -> Wei {
        Wei::from_gwei(20)
    }

    #[test]
    fn internal_funder_is_found() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(10.0));
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        s.chain.seal_block(Timestamp::from_secs(2_000_000)).unwrap();
        let first_trade = Timestamp::from_secs(2_000_000);
        let evidence =
            common_funder(&s.chain, &s.labels, &[s.a, s.b], first_trade).expect("funder");
        assert_eq!(evidence.kind, FlowKind::Internal);
        assert_eq!(evidence.account, s.a);
        assert_eq!(evidence.degree, 1);
    }

    #[test]
    fn external_funder_requires_two_recipients_and_no_exchange_label() {
        let mut s = setup();
        let funder = s.chain.create_eoa("outside-funder").unwrap();
        s.chain.fund(funder, Wei::from_eth(20.0));
        s.chain.submit(TxRequest::ether_transfer(funder, s.a, Wei::from_eth(3.0), gwei())).unwrap();
        let first_trade = Timestamp::from_secs(2_000_000);
        // Only one colluder funded: not enough.
        assert!(common_funder(&s.chain, &s.labels, &[s.a, s.b], first_trade).is_none());
        s.chain.submit(TxRequest::ether_transfer(funder, s.b, Wei::from_eth(3.0), gwei())).unwrap();
        let evidence =
            common_funder(&s.chain, &s.labels, &[s.a, s.b], first_trade).expect("funder");
        assert_eq!(evidence.kind, FlowKind::External);
        assert_eq!(evidence.account, funder);
        assert_eq!(evidence.degree, 2);

        // Once the funder is labelled as an exchange, the evidence vanishes.
        s.labels.insert(funder, "Coinbase 12", LabelCategory::Exchange);
        assert!(common_funder(&s.chain, &s.labels, &[s.a, s.b], first_trade).is_none());
    }

    #[test]
    fn funding_after_the_first_trade_does_not_count() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(10.0));
        s.chain.seal_block(Timestamp::from_secs(3_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        // The "funding" happens after the trades started.
        let first_trade = Timestamp::from_secs(2_000_000);
        assert!(common_funder(&s.chain, &s.labels, &[s.a, s.b], first_trade).is_none());
    }

    #[test]
    fn internal_exit_is_found() {
        let mut s = setup();
        s.chain.fund(s.b, Wei::from_eth(10.0));
        s.chain.seal_block(Timestamp::from_secs(5_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.b, s.a, Wei::from_eth(9.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(4_000_000);
        let evidence = common_exit(&s.chain, &s.labels, &[s.a, s.b], last_trade).expect("exit");
        assert_eq!(evidence.kind, FlowKind::Internal);
        assert_eq!(evidence.account, s.a);
    }

    #[test]
    fn external_exit_requires_two_senders() {
        let mut s = setup();
        let sink = s.chain.create_eoa("profit-sink").unwrap();
        s.chain.fund(s.a, Wei::from_eth(5.0));
        s.chain.fund(s.b, Wei::from_eth(5.0));
        s.chain.seal_block(Timestamp::from_secs(5_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.a, sink, Wei::from_eth(4.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(4_000_000);
        assert!(common_exit(&s.chain, &s.labels, &[s.a, s.b], last_trade).is_none());
        s.chain.submit(TxRequest::ether_transfer(s.b, sink, Wei::from_eth(4.0), gwei())).unwrap();
        let evidence = common_exit(&s.chain, &s.labels, &[s.a, s.b], last_trade).expect("exit");
        assert_eq!(evidence.kind, FlowKind::External);
        assert_eq!(evidence.account, sink);
        assert_eq!(evidence.degree, 2);
    }

    #[test]
    fn transfers_before_last_trade_are_ignored_for_exit() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(5.0));
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(9_000_000);
        assert!(common_exit(&s.chain, &s.labels, &[s.a, s.b], last_trade).is_none());
    }
}
