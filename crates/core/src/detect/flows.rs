//! The common-funder (§IV-C ii) and common-exit (§IV-C iii) heuristics.
//!
//! Colluding accounts are usually operated by one entity, which shows up in
//! the money flow around the manipulation: the accounts receive their initial
//! funds from a common account before the first wash trade, and sweep the
//! proceeds back to a common account afterwards. Exchange and DeFi addresses
//! are excluded from being common *external* funders/exits, because they fund
//! and receive from thousands of unrelated users.
//!
//! Both heuristics are the same computation with the flow direction
//! reversed, so they share [`common_flow`]: collect the counterparties of
//! each colluding account's qualifying transactions, then pick the account
//! that touches the most colluders. Per-counterparty colluder sets are
//! [`BitSet`]s over component-local positions — the counterparty key itself
//! stays an [`Address`], because funders and exits are arbitrary chain
//! accounts that need not appear in any transfer (and hence have no dense
//! id).

use std::collections::HashMap;

use ethsim::{Address, Chain, Timestamp};
use ids::BitSet;
use labels::LabelRegistry;
use serde::{Deserialize, Serialize};

/// Whether the common account sits inside or outside the colluding set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// The common account is one of the colluding accounts.
    Internal,
    /// The common account is outside the colluding set.
    External,
}

/// Evidence produced by the funder or exit heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEvidence {
    /// Internal or external common account.
    pub kind: FlowKind,
    /// The common funder / exit account.
    pub account: Address,
    /// How many colluding accounts it funded / received from.
    pub degree: usize,
}

/// Which side of the manipulation a flow search looks at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowDirection {
    /// Money *into* the colluders before the first trade (common funder).
    Funding,
    /// Money *out of* the colluders after the last trade (common exit).
    Exit,
}

/// Find a common funder for the component: an account that sends ETH or
/// ERC-20 tokens (in transactions that move no NFT) to colluding accounts
/// *before* the first wash trade. An internal funder needs to fund at least
/// one other colluder; an external funder at least two, and must not be an
/// exchange or DeFi service.
pub fn common_funder(
    chain: &Chain,
    labels: &LabelRegistry,
    accounts: &[Address],
    first_trade: Timestamp,
) -> Option<FlowEvidence> {
    common_flow(chain, labels, accounts, first_trade, FlowDirection::Funding)
}

/// Find a common exit for the component: an account that receives ETH or
/// ERC-20 tokens from colluding accounts (in transactions that move no NFT)
/// *after* the last wash trade. An internal exit needs one sender, an
/// external exit at least two and must not be an exchange or DeFi service.
pub fn common_exit(
    chain: &Chain,
    labels: &LabelRegistry,
    accounts: &[Address],
    last_trade: Timestamp,
) -> Option<FlowEvidence> {
    common_flow(chain, labels, accounts, last_trade, FlowDirection::Exit)
}

/// The shared direction-parameterized search behind both heuristics.
fn common_flow(
    chain: &Chain,
    labels: &LabelRegistry,
    accounts: &[Address],
    cutoff: Timestamp,
    direction: FlowDirection,
) -> Option<FlowEvidence> {
    // Counterparty → bitset of component positions it touched.
    let mut touched: HashMap<Address, BitSet> = HashMap::new();
    let mut counterparties: Vec<Address> = Vec::new();
    for (position, &account) in accounts.iter().enumerate() {
        for tx in chain.transactions_of(account) {
            counterparties.clear();
            match direction {
                FlowDirection::Funding => {
                    if tx.timestamp >= cutoff || !tx.is_funding_of(account) {
                        continue;
                    }
                    // The funder is the transaction sender for plain ETH
                    // transfers and the token sender for ERC-20 funding.
                    counterparties.push(tx.from);
                    for log in &tx.logs {
                        if let Some(transfer) = log.decode_erc20_transfer() {
                            if transfer.to == account && transfer.amount > 0 {
                                counterparties.push(transfer.from);
                            }
                        }
                    }
                }
                FlowDirection::Exit => {
                    if tx.timestamp <= cutoff {
                        continue;
                    }
                    if tx.logs.iter().any(|log| log.is_erc721_transfer()) {
                        continue;
                    }
                    if tx.from == account && !tx.value.is_zero() {
                        if let Some(to) = tx.to {
                            counterparties.push(to);
                        }
                    }
                    for transfer in &tx.internal_transfers {
                        if transfer.from == account && !transfer.value.is_zero() {
                            counterparties.push(transfer.to);
                        }
                    }
                    for log in &tx.logs {
                        if let Some(transfer) = log.decode_erc20_transfer() {
                            if transfer.from == account && transfer.amount > 0 {
                                counterparties.push(transfer.to);
                            }
                        }
                    }
                }
            }
            for &counterparty in &counterparties {
                if counterparty == account {
                    continue;
                }
                touched.entry(counterparty).or_default().insert(position);
            }
        }
    }

    // Components hold a handful of accounts, so a linear probe beats any
    // sortedness precondition (and keeps the public API order-insensitive).
    let kind_of = |counterparty: &Address| {
        if accounts.contains(counterparty) {
            FlowKind::Internal
        } else {
            FlowKind::External
        }
    };
    // Prefer an internal account (the paper finds internal funders 4× as
    // often as external ones). Degree ties break towards the lowest address:
    // `touched` is a HashMap, so an unkeyed max would follow per-process
    // random iteration order.
    let internal = touched
        .iter()
        .filter(|(counterparty, set)| {
            kind_of(counterparty) == FlowKind::Internal && !set.is_empty()
        })
        .max_by_key(|(counterparty, set)| (set.len(), std::cmp::Reverse(**counterparty)))
        .map(|(counterparty, set)| FlowEvidence {
            kind: FlowKind::Internal,
            account: *counterparty,
            degree: set.len(),
        });
    if internal.is_some() {
        return internal;
    }
    touched
        .iter()
        .filter(|(counterparty, set)| {
            kind_of(counterparty) == FlowKind::External
                && set.len() >= 2
                && !labels.is_exchange_or_defi(**counterparty)
        })
        .max_by_key(|(counterparty, set)| (set.len(), std::cmp::Reverse(**counterparty)))
        .map(|(counterparty, set)| FlowEvidence {
            kind: FlowKind::External,
            account: *counterparty,
            degree: set.len(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{TxRequest, Wei};
    use labels::LabelCategory;

    struct Setup {
        chain: Chain,
        labels: LabelRegistry,
        a: Address,
        b: Address,
    }

    impl Setup {
        /// The colluding pair, sorted as candidate account lists are.
        fn pair(&self) -> Vec<Address> {
            let mut pair = vec![self.a, self.b];
            pair.sort();
            pair
        }
    }

    fn setup() -> Setup {
        let mut chain = Chain::new(Timestamp::from_secs(1_000_000));
        let a = chain.create_eoa("washer-a").unwrap();
        let b = chain.create_eoa("washer-b").unwrap();
        chain.fund(a, Wei::from_eth(1.0));
        chain.fund(b, Wei::from_eth(1.0));
        Setup { chain, labels: LabelRegistry::new(), a, b }
    }

    fn gwei() -> Wei {
        Wei::from_gwei(20)
    }

    #[test]
    fn internal_funder_is_found() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(10.0));
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        s.chain.seal_block(Timestamp::from_secs(2_000_000)).unwrap();
        let first_trade = Timestamp::from_secs(2_000_000);
        let evidence = common_funder(&s.chain, &s.labels, &s.pair(), first_trade).expect("funder");
        assert_eq!(evidence.kind, FlowKind::Internal);
        assert_eq!(evidence.account, s.a);
        assert_eq!(evidence.degree, 1);
    }

    #[test]
    fn external_funder_requires_two_recipients_and_no_exchange_label() {
        let mut s = setup();
        let funder = s.chain.create_eoa("outside-funder").unwrap();
        s.chain.fund(funder, Wei::from_eth(20.0));
        s.chain.submit(TxRequest::ether_transfer(funder, s.a, Wei::from_eth(3.0), gwei())).unwrap();
        let first_trade = Timestamp::from_secs(2_000_000);
        // Only one colluder funded: not enough.
        assert!(common_funder(&s.chain, &s.labels, &s.pair(), first_trade).is_none());
        s.chain.submit(TxRequest::ether_transfer(funder, s.b, Wei::from_eth(3.0), gwei())).unwrap();
        let evidence = common_funder(&s.chain, &s.labels, &s.pair(), first_trade).expect("funder");
        assert_eq!(evidence.kind, FlowKind::External);
        assert_eq!(evidence.account, funder);
        assert_eq!(evidence.degree, 2);

        // Once the funder is labelled as an exchange, the evidence vanishes.
        s.labels.insert(funder, "Coinbase 12", LabelCategory::Exchange);
        assert!(common_funder(&s.chain, &s.labels, &s.pair(), first_trade).is_none());
    }

    #[test]
    fn funding_after_the_first_trade_does_not_count() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(10.0));
        s.chain.seal_block(Timestamp::from_secs(3_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        // The "funding" happens after the trades started.
        let first_trade = Timestamp::from_secs(2_000_000);
        assert!(common_funder(&s.chain, &s.labels, &s.pair(), first_trade).is_none());
    }

    #[test]
    fn internal_exit_is_found() {
        let mut s = setup();
        s.chain.fund(s.b, Wei::from_eth(10.0));
        s.chain.seal_block(Timestamp::from_secs(5_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.b, s.a, Wei::from_eth(9.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(4_000_000);
        let evidence = common_exit(&s.chain, &s.labels, &s.pair(), last_trade).expect("exit");
        assert_eq!(evidence.kind, FlowKind::Internal);
        assert_eq!(evidence.account, s.a);
    }

    #[test]
    fn external_exit_requires_two_senders() {
        let mut s = setup();
        let sink = s.chain.create_eoa("profit-sink").unwrap();
        s.chain.fund(s.a, Wei::from_eth(5.0));
        s.chain.fund(s.b, Wei::from_eth(5.0));
        s.chain.seal_block(Timestamp::from_secs(5_000_000)).unwrap();
        s.chain.submit(TxRequest::ether_transfer(s.a, sink, Wei::from_eth(4.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(4_000_000);
        assert!(common_exit(&s.chain, &s.labels, &s.pair(), last_trade).is_none());
        s.chain.submit(TxRequest::ether_transfer(s.b, sink, Wei::from_eth(4.0), gwei())).unwrap();
        let evidence = common_exit(&s.chain, &s.labels, &s.pair(), last_trade).expect("exit");
        assert_eq!(evidence.kind, FlowKind::External);
        assert_eq!(evidence.account, sink);
        assert_eq!(evidence.degree, 2);
    }

    #[test]
    fn transfers_before_last_trade_are_ignored_for_exit() {
        let mut s = setup();
        s.chain.fund(s.a, Wei::from_eth(5.0));
        s.chain.submit(TxRequest::ether_transfer(s.a, s.b, Wei::from_eth(4.0), gwei())).unwrap();
        let last_trade = Timestamp::from_secs(9_000_000);
        assert!(common_exit(&s.chain, &s.labels, &s.pair(), last_trade).is_none());
    }
}
