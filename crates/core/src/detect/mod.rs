//! Wash-trading confirmation (§IV-C) and method comparison (§IV-D).
//!
//! The refinement stage produces *candidates* — strongly connected components
//! with real traded value. This module confirms them as wash trading when at
//! least one of five independent signals is present:
//!
//! 1. **Zero-risk position** — the component's net ETH position over the
//!    NFT's trades is zero ([`zero_risk`]).
//! 2. **Common funder** — a common account funds the colluders before the
//!    first trade ([`flows::common_funder`]).
//! 3. **Common exit** — the proceeds flow to a common account after the last
//!    trade ([`flows::common_exit`]).
//! 4. **Self-trade** — an account sells the NFT to itself (verified de facto).
//! 5. **Leveraging confirmed events** — the same set of accounts was already
//!    confirmed on another NFT.
//!
//! Detection runs on dense candidates ([`DenseDetectionOutcome`]); the
//! address-keyed [`DetectionOutcome`] is produced exactly once, by
//! [`DenseDetectionOutcome::resolve`], at report assembly.

pub mod flows;
pub mod zero_risk;

use std::collections::HashSet;

use ethsim::{Address, Chain};
use ids::{AccountId, Interner, NftKey};
use labels::LabelRegistry;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::parallel::Executor;
use crate::refine::{Candidate, DenseCandidate};
use crate::txgraph::NftGraph;

pub use flows::{FlowEvidence, FlowKind};

/// Which detection methods confirmed an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MethodSet {
    /// Zero-risk position (§IV-C i).
    pub zero_risk: bool,
    /// Common funder evidence (§IV-C ii).
    pub common_funder: Option<FlowEvidence>,
    /// Common exit evidence (§IV-C iii).
    pub common_exit: Option<FlowEvidence>,
    /// Self-trade (§IV-C iv).
    pub self_trade: bool,
    /// Confirmed by sharing its account set with an already-confirmed
    /// activity (§IV-C v).
    pub leveraged: bool,
}

impl MethodSet {
    /// Whether any method confirmed the activity.
    pub fn confirmed(&self) -> bool {
        self.zero_risk
            || self.common_funder.is_some()
            || self.common_exit.is_some()
            || self.self_trade
            || self.leveraged
    }

    /// How many of the three transaction-analysis methods fired (used for the
    /// §IV-D overlap statistics).
    pub fn flow_method_count(&self) -> usize {
        usize::from(self.zero_risk)
            + usize::from(self.common_funder.is_some())
            + usize::from(self.common_exit.is_some())
    }
}

/// A confirmed wash-trading activity in resolved (address-keyed) form: the
/// report-boundary twin of [`DenseActivity`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfirmedActivity {
    /// The underlying candidate component.
    pub candidate: Candidate,
    /// The methods that confirmed it.
    pub methods: MethodSet,
}

impl ConfirmedActivity {
    /// The colluding accounts.
    pub fn accounts(&self) -> &[Address] {
        &self.candidate.accounts
    }

    /// The manipulated NFT.
    pub fn nft(&self) -> NftId {
        self.candidate.nft
    }
}

/// A confirmed wash-trading activity in dense-id form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseActivity {
    /// The underlying candidate component.
    pub candidate: DenseCandidate,
    /// The methods that confirmed it.
    pub methods: MethodSet,
}

impl DenseActivity {
    /// The colluding accounts (sorted by resolved address).
    pub fn accounts(&self) -> &[AccountId] {
        &self.candidate.accounts
    }

    /// The manipulated NFT.
    pub fn nft(&self) -> NftKey {
        self.candidate.nft
    }

    /// Resolve to the report-boundary [`ConfirmedActivity`].
    pub fn resolve(&self, interner: &Interner) -> ConfirmedActivity {
        ConfirmedActivity { candidate: self.candidate.resolve(interner), methods: self.methods }
    }
}

/// Counts for the Fig. 2 Venn diagram over the three transaction-analysis
/// methods (activities confirmed by at least one of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VennCounts {
    /// Zero-risk only.
    pub zero_risk_only: usize,
    /// Common funder only.
    pub funder_only: usize,
    /// Common exit only.
    pub exit_only: usize,
    /// Zero-risk ∩ common funder.
    pub zero_and_funder: usize,
    /// Zero-risk ∩ common exit.
    pub zero_and_exit: usize,
    /// Common funder ∩ common exit.
    pub funder_and_exit: usize,
    /// All three.
    pub all_three: usize,
}

impl VennCounts {
    /// Total activities confirmed by at least one flow method.
    pub fn total(&self) -> usize {
        self.zero_risk_only
            + self.funder_only
            + self.exit_only
            + self.zero_and_funder
            + self.zero_and_exit
            + self.funder_and_exit
            + self.all_three
    }

    /// Activities confirmed by at least two of the three methods.
    pub fn at_least_two(&self) -> usize {
        self.zero_and_funder + self.zero_and_exit + self.funder_and_exit + self.all_three
    }

    fn record(&mut self, methods: &MethodSet) {
        let z = methods.zero_risk;
        let f = methods.common_funder.is_some();
        let e = methods.common_exit.is_some();
        match (z, f, e) {
            (true, false, false) => self.zero_risk_only += 1,
            (false, true, false) => self.funder_only += 1,
            (false, false, true) => self.exit_only += 1,
            (true, true, false) => self.zero_and_funder += 1,
            (true, false, true) => self.zero_and_exit += 1,
            (false, true, true) => self.funder_and_exit += 1,
            (true, true, true) => self.all_three += 1,
            (false, false, false) => {}
        }
    }
}

/// The outcome of running all detectors over the candidates, resolved for
/// the report. Produced once per report assembly by
/// [`DenseDetectionOutcome::resolve`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Confirmed wash-trading activities.
    pub confirmed: Vec<ConfirmedActivity>,
    /// Candidates that no method confirmed.
    pub rejected: usize,
    /// Overlap of the three transaction-analysis methods (Fig. 2).
    pub venn: VennCounts,
    /// How many activities were confirmed only by the leverage rule (§IV-C v).
    pub leveraged_only: usize,
    /// How many confirmed activities contain a self-trade edge.
    pub self_trades: usize,
}

/// The outcome of running all detectors over the candidates, in dense form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DenseDetectionOutcome {
    /// Confirmed wash-trading activities.
    pub confirmed: Vec<DenseActivity>,
    /// Candidates that no method confirmed.
    pub rejected: usize,
    /// Overlap of the three transaction-analysis methods (Fig. 2).
    pub venn: VennCounts,
    /// How many activities were confirmed only by the leverage rule (§IV-C v).
    pub leveraged_only: usize,
    /// How many confirmed activities contain a self-trade edge.
    pub self_trades: usize,
}

impl DenseDetectionOutcome {
    /// Resolve every confirmed activity back to addresses — the single point
    /// where detection ids become report addresses.
    pub fn resolve(&self, interner: &Interner) -> DetectionOutcome {
        DetectionOutcome {
            confirmed: self.confirmed.iter().map(|activity| activity.resolve(interner)).collect(),
            rejected: self.rejected,
            venn: self.venn,
            leveraged_only: self.leveraged_only,
            self_trades: self.self_trades,
        }
    }
}

/// Runs the five confirmation methods over refined candidates.
pub struct Detector<'a> {
    chain: &'a Chain,
    labels: &'a LabelRegistry,
    interner: &'a Interner,
}

impl<'a> Detector<'a> {
    /// Create a detector reading transactions and labels from the chain,
    /// resolving dense ids through `interner`.
    pub fn new(chain: &'a Chain, labels: &'a LabelRegistry, interner: &'a Interner) -> Self {
        Detector { chain, labels, interner }
    }

    /// Evaluate every candidate using one thread per available core; thin
    /// wrapper over [`Detector::detect_with`].
    pub fn detect(
        &self,
        candidates: &[DenseCandidate],
        graphs: &[NftGraph],
    ) -> DenseDetectionOutcome {
        self.detect_with(candidates, graphs, &Executor::default())
    }

    /// Evaluate every candidate and return the confirmed activities together
    /// with the method-comparison statistics.
    ///
    /// `graphs` is the [`NftKey`]-indexed graph table ([`NftGraph::
    /// from_dataset_with`] output): the zero-risk computation needs the
    /// trades that cross the component boundary. Per-candidate evidence is
    /// independent, so it is gathered over the executor's thread budget;
    /// evidence comes back in candidate order, making the outcome identical
    /// at any thread count.
    pub fn detect_with(
        &self,
        candidates: &[DenseCandidate],
        graphs: &[NftGraph],
        executor: &Executor,
    ) -> DenseDetectionOutcome {
        let evidence = executor.map(candidates, |candidate| {
            self.evaluate(candidate, graphs.get(candidate.nft.index()))
        });
        Detector::assemble(candidates, evidence)
    }

    /// Run the leverage pass (§IV-C v) over per-candidate base evidence and
    /// assemble the final [`DenseDetectionOutcome`] (Venn counts, self-trade
    /// and rejection tallies).
    ///
    /// `evidence[i]` must be the [`Detector::evaluate`] result for
    /// `candidates[i]` with `leveraged` still `false`. This is a pure
    /// function of its inputs: the streaming subsystem caches base evidence
    /// per NFT and re-assembles the global outcome each epoch through this
    /// same code path, which is what makes the live and batch outcomes
    /// bit-identical.
    pub fn assemble(
        candidates: &[DenseCandidate],
        evidence: Vec<MethodSet>,
    ) -> DenseDetectionOutcome {
        assert_eq!(candidates.len(), evidence.len(), "one evidence record per candidate");
        let pairs: Vec<(&DenseCandidate, MethodSet)> = candidates.iter().zip(evidence).collect();
        Detector::assemble_indexed(&pairs).0
    }

    /// [`Detector::assemble`] over borrowed candidates, additionally
    /// returning the input indices of the confirmed activities (in confirmed
    /// order). The streaming reassembly walks its per-NFT caches into a pair
    /// list without cloning every candidate each epoch, and uses the indices
    /// to line the confirmed set up with the cached characterize/profit
    /// facts that live alongside each candidate.
    pub fn assemble_indexed(
        pairs: &[(&DenseCandidate, MethodSet)],
    ) -> (DenseDetectionOutcome, Vec<u32>) {
        // Leverage pass: any unconfirmed candidate whose account set matches a
        // confirmed activity's account set is confirmed too. Account lists
        // are consistently address-sorted id lists, so slice equality is
        // exactly set equality of the underlying addresses.
        let confirmed_sets: HashSet<&[AccountId]> = pairs
            .iter()
            .filter(|(_, methods)| methods.confirmed())
            .map(|(candidate, _)| candidate.accounts.as_slice())
            .collect();
        let mut leveraged_only = 0usize;
        let mut outcome = DenseDetectionOutcome::default();
        let mut confirmed_indices = Vec::new();
        for (index, (candidate, methods)) in pairs.iter().enumerate() {
            let mut methods = *methods;
            if !methods.confirmed() && confirmed_sets.contains(candidate.accounts.as_slice()) {
                methods.leveraged = true;
                leveraged_only += 1;
            }
            if !methods.confirmed() {
                outcome.rejected += 1;
                continue;
            }
            if methods.flow_method_count() > 0 {
                outcome.venn.record(&methods);
            }
            if methods.self_trade {
                outcome.self_trades += 1;
            }
            confirmed_indices.push(index as u32);
            outcome.confirmed.push(DenseActivity { candidate: (*candidate).clone(), methods });
        }
        outcome.leveraged_only = leveraged_only;
        (outcome, confirmed_indices)
    }

    /// Gather the base evidence (zero-risk, common funder, common exit,
    /// self-trade) for one candidate. Pure per candidate — it reads only the
    /// candidate, its NFT's graph and the immutable chain/labels — so results
    /// can be cached and recomputed only when the NFT's graph changes. The
    /// `leveraged` flag is always `false` here; it is a global property
    /// assigned by [`Detector::assemble`].
    ///
    /// The candidate's accounts resolve to addresses exactly once here, for
    /// the chain-history flow scans (funders and exits are arbitrary chain
    /// accounts outside the dense id space).
    pub fn evaluate(&self, candidate: &DenseCandidate, graph: Option<&NftGraph>) -> MethodSet {
        let zero_risk =
            graph.map(|graph| zero_risk::is_zero_risk(graph, &candidate.accounts)).unwrap_or(false);
        let addresses: Vec<Address> =
            candidate.accounts.iter().map(|&id| self.interner.address(id)).collect();
        let common_funder =
            flows::common_funder(self.chain, self.labels, &addresses, candidate.first_trade);
        let common_exit =
            flows::common_exit(self.chain, self.labels, &addresses, candidate.last_trade);
        MethodSet {
            zero_risk,
            common_funder,
            common_exit,
            self_trade: candidate.has_self_trade(),
            leveraged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, NftTransfer};
    use crate::refine::Refiner;
    use crate::txgraph::tests::dataset_of;
    use ethsim::{BlockNumber, Timestamp, TxHash, TxRequest, Wei};

    fn mk(nft: NftId, from: Address, to: Address, price: f64, at: u64, tag: &str) -> NftTransfer {
        NftTransfer {
            nft,
            from,
            to,
            tx_hash: TxHash::hash_of(tag.as_bytes()),
            block: BlockNumber(at),
            timestamp: Timestamp::from_secs(at * 1_000),
            price: Wei::from_eth(price),
            marketplace: None,
        }
    }

    /// Refine a dataset's graphs into dense candidates.
    fn refined(
        dataset: &Dataset,
        chain: &Chain,
        labels: &LabelRegistry,
    ) -> (Vec<DenseCandidate>, Vec<NftGraph>) {
        let graphs = NftGraph::from_dataset(dataset);
        let (candidates, _) = Refiner::new(chain, labels, &dataset.interner).refine(&graphs);
        (candidates, graphs)
    }

    /// Build a minimal chain + graph where two accounts round-trip an NFT,
    /// funded by account `a` and swept back to `a`.
    fn wash_world() -> (Chain, LabelRegistry, Dataset, Vec<DenseCandidate>, Vec<NftGraph>) {
        let mut chain = Chain::new(Timestamp::from_secs(1_000));
        let a = chain.create_eoa("washer-a").unwrap();
        let b = chain.create_eoa("washer-b").unwrap();
        chain.fund(a, Wei::from_eth(20.0));
        let gas = Wei::from_gwei(20);

        // Funding: a → b before the trades.
        chain.submit(TxRequest::ether_transfer(a, b, Wei::from_eth(5.0), gas)).unwrap();
        chain.seal_block(Timestamp::from_secs(10_000)).unwrap();

        // The wash trades themselves (recorded in the NFT graph below; the
        // ETH legs are not needed for funder/exit evidence).
        chain.seal_block(Timestamp::from_secs(20_000)).unwrap();

        // Exit: b → a after the trades.
        chain.submit(TxRequest::ether_transfer(b, a, Wei::from_eth(4.0), gas)).unwrap();

        let nft = NftId::new(Address::derived("collection"), 1);
        let dataset = dataset_of(&[
            mk(nft, Address::NULL, a, 0.0, 9, "mint"),
            mk(nft, a, b, 2.0, 11, "t1"),
            mk(nft, b, a, 2.0, 12, "t2"),
        ]);
        let labels = LabelRegistry::new();
        let (candidates, graphs) = refined(&dataset, &chain, &labels);
        (chain, labels, dataset, candidates, graphs)
    }

    #[test]
    fn full_evidence_confirms_with_all_three_methods() {
        let (chain, labels, dataset, candidates, graphs) = wash_world();
        assert_eq!(candidates.len(), 1);
        let detector = Detector::new(&chain, &labels, &dataset.interner);
        let outcome = detector.detect(&candidates, &graphs);
        assert_eq!(outcome.confirmed.len(), 1);
        assert_eq!(outcome.rejected, 0);
        let methods = outcome.confirmed[0].methods;
        assert!(methods.zero_risk);
        assert_eq!(methods.common_funder.unwrap().kind, FlowKind::Internal);
        assert_eq!(methods.common_exit.unwrap().kind, FlowKind::Internal);
        assert!(!methods.self_trade);
        assert_eq!(outcome.venn.all_three, 1);
        assert_eq!(outcome.venn.total(), 1);
        assert_eq!(methods.flow_method_count(), 3);
        // Resolution reproduces the same evidence on the address-keyed view.
        let resolved = outcome.resolve(&dataset.interner);
        assert_eq!(resolved.confirmed[0].methods, methods);
        assert_eq!(resolved.confirmed[0].nft(), NftId::new(Address::derived("collection"), 1));
        assert_eq!(resolved.venn, outcome.venn);
    }

    #[test]
    fn candidate_without_evidence_is_rejected() {
        // Two accounts round-trip an NFT they bought from an outsider, with no
        // funding or exit flows: every method stays silent.
        let mut chain = Chain::new(Timestamp::from_secs(1_000));
        let a = chain.create_eoa("lone-a").unwrap();
        let b = chain.create_eoa("lone-b").unwrap();
        chain.fund(a, Wei::from_eth(10.0));
        chain.fund(b, Wei::from_eth(10.0));
        let nft = NftId::new(Address::derived("collection"), 2);
        let seller = Address::derived("outside-seller");
        let dataset = dataset_of(&[
            mk(nft, seller, a, 1.0, 5, "buy"),
            mk(nft, a, b, 2.0, 6, "x1"),
            mk(nft, b, a, 2.0, 7, "x2"),
        ]);
        let labels = LabelRegistry::new();
        let (candidates, graphs) = refined(&dataset, &chain, &labels);
        assert_eq!(candidates.len(), 1);
        let outcome =
            Detector::new(&chain, &labels, &dataset.interner).detect(&candidates, &graphs);
        assert!(outcome.confirmed.is_empty());
        assert_eq!(outcome.rejected, 1);
        assert_eq!(outcome.venn.total(), 0);
    }

    #[test]
    fn leverage_confirms_matching_account_sets() {
        // A chain with no ETH flows at all: the first NFT is confirmed purely
        // by its zero-risk position (minted to a colluder, never sold on);
        // the second NFT, traded by the same pair but bought from an outsider
        // for value, has no evidence of its own and is confirmed only by the
        // leverage rule.
        let mut chain = Chain::new(Timestamp::from_secs(1_000));
        let a = chain.create_eoa("lev-a").unwrap();
        let b = chain.create_eoa("lev-b").unwrap();
        chain.fund(a, Wei::from_eth(10.0));
        chain.fund(b, Wei::from_eth(10.0));
        let labels = LabelRegistry::new();

        let nft1 = NftId::new(Address::derived("collection"), 1);
        let nft2 = NftId::new(Address::derived("collection"), 99);
        let dataset = dataset_of(&[
            mk(nft1, Address::NULL, a, 0.0, 1, "mint1"),
            mk(nft1, a, b, 2.0, 2, "t1"),
            mk(nft1, b, a, 2.0, 3, "t2"),
            mk(nft2, Address::derived("someone-else"), a, 1.0, 10, "buy2"),
            mk(nft2, a, b, 3.0, 11, "y1"),
            mk(nft2, b, a, 3.0, 12, "y2"),
        ]);
        let (candidates, graphs) = refined(&dataset, &chain, &labels);
        assert_eq!(candidates.len(), 2);

        let outcome =
            Detector::new(&chain, &labels, &dataset.interner).detect(&candidates, &graphs);
        assert_eq!(outcome.confirmed.len(), 2);
        assert_eq!(outcome.leveraged_only, 1);
        let key2 = dataset.interner.nft_key(nft2).unwrap();
        let leveraged = outcome.confirmed.iter().find(|activity| activity.nft() == key2).unwrap();
        assert!(leveraged.methods.leveraged);
        assert_eq!(leveraged.methods.flow_method_count(), 0);
        let key1 = dataset.interner.nft_key(nft1).unwrap();
        let original = outcome.confirmed.iter().find(|activity| activity.nft() == key1).unwrap();
        assert!(original.methods.zero_risk);
        assert!(!original.methods.leveraged);
    }

    #[test]
    fn self_trade_is_verified_de_facto() {
        let mut chain = Chain::new(Timestamp::from_secs(1_000));
        let a = chain.create_eoa("selfish").unwrap();
        chain.fund(a, Wei::from_eth(5.0));
        let nft = NftId::new(Address::derived("collection"), 7);
        let dataset = dataset_of(&[
            mk(nft, Address::derived("outside-seller"), a, 1.0, 2, "acq"),
            mk(nft, a, a, 2.0, 3, "self"),
        ]);
        let labels = LabelRegistry::new();
        let (candidates, graphs) = refined(&dataset, &chain, &labels);
        let outcome =
            Detector::new(&chain, &labels, &dataset.interner).detect(&candidates, &graphs);
        assert_eq!(outcome.confirmed.len(), 1);
        assert!(outcome.confirmed[0].methods.self_trade);
        assert_eq!(outcome.self_trades, 1);
    }

    #[test]
    fn method_set_confirmed_iff_any_signal_fires() {
        assert!(!MethodSet::default().confirmed());
        let evidence =
            FlowEvidence { account: Address::derived("x"), kind: FlowKind::Internal, degree: 2 };
        let singles = [
            MethodSet { zero_risk: true, ..MethodSet::default() },
            MethodSet { common_funder: Some(evidence), ..MethodSet::default() },
            MethodSet { common_exit: Some(evidence), ..MethodSet::default() },
            MethodSet { self_trade: true, ..MethodSet::default() },
            MethodSet { leveraged: true, ..MethodSet::default() },
        ];
        for (index, methods) in singles.iter().enumerate() {
            assert!(methods.confirmed(), "signal #{index} alone must confirm");
        }
        // flow_method_count covers exactly the three transaction-analysis
        // signals, never self-trades or leveraging.
        assert_eq!(singles[0].flow_method_count(), 1);
        assert_eq!(singles[1].flow_method_count(), 1);
        assert_eq!(singles[2].flow_method_count(), 1);
        assert_eq!(singles[3].flow_method_count(), 0);
        assert_eq!(singles[4].flow_method_count(), 0);
    }

    #[test]
    fn venn_total_is_the_sum_of_all_buckets() {
        let venn = VennCounts {
            zero_risk_only: 1,
            funder_only: 2,
            exit_only: 3,
            zero_and_funder: 4,
            zero_and_exit: 5,
            funder_and_exit: 6,
            all_three: 7,
        };
        assert_eq!(venn.total(), 28);
        assert_eq!(venn.at_least_two(), 22);
        assert!(venn.at_least_two() <= venn.total());
    }

    #[test]
    fn venn_record_covers_every_combination_once() {
        let evidence =
            FlowEvidence { account: Address::derived("x"), kind: FlowKind::Internal, degree: 2 };
        let mut venn = VennCounts::default();
        for mask in 0u8..8 {
            let methods = MethodSet {
                zero_risk: mask & 1 != 0,
                common_funder: (mask & 2 != 0).then_some(evidence),
                common_exit: (mask & 4 != 0).then_some(evidence),
                ..MethodSet::default()
            };
            venn.record(&methods);
        }
        // Seven of the eight masks have at least one flow method; the all-off
        // mask must not be counted anywhere.
        assert_eq!(venn.total(), 7);
        assert_eq!(
            (venn.zero_risk_only, venn.funder_only, venn.exit_only),
            (1, 1, 1),
            "each single-method bucket exactly once"
        );
        assert_eq!(venn.at_least_two(), 4);
    }
}
