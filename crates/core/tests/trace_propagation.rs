//! Trace-context propagation across `Executor` fan-outs: a span opened
//! inside a worker closure must parent under the fan-out's calling span —
//! through the auto-opened `executor.worker` span when threads actually
//! spawn, directly when the executor runs inline — with correct parent ids
//! at every nesting depth and at thread counts {1, 2, 4, 8}.
//!
//! The flight ring is process-global, so each thread-count case uses names
//! unique to it and reconstructs its own tree from a filtered dump.

use std::collections::HashMap;

use obs::{SpanId, SpanRecord};
use washtrade::parallel::Executor;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ITEMS: usize = 48;

fn spans_of(prefix: &str) -> HashMap<SpanId, SpanRecord> {
    obs::flight::dump()
        .into_iter()
        .filter(|record| record.name.starts_with(prefix) || record.name == "executor.worker")
        .map(|record| (record.span, record))
        .collect()
}

/// Walk `record`'s parent chain inside `spans` up to a root; returns the
/// chain of names, innermost first.
fn ancestry<'a>(spans: &'a HashMap<SpanId, SpanRecord>, mut record: &'a SpanRecord) -> Vec<String> {
    let mut names = vec![record.name.clone()];
    while let Some(parent) = record.parent {
        record = spans.get(&parent).expect("parent span recorded and retained");
        names.push(record.name.clone());
    }
    names
}

#[test]
fn worker_spans_inherit_the_fanout_parent_at_every_depth() {
    for threads in THREAD_COUNTS {
        let prefix = format!("prop.t{threads}");
        let executor = Executor::new(threads);
        let root_name = format!("{prefix}.root");
        {
            let _root = obs::trace::span_dynamic(&root_name);
            let items: Vec<u64> = (0..ITEMS as u64).collect();
            let out = executor.map(&items, |item| {
                let _l1 = obs::trace::span_dynamic(&format!("{prefix}.l1"));
                let _l2 = obs::trace::span_dynamic(&format!("{prefix}.l2"));
                let _l3 = obs::trace::span_dynamic(&format!("{prefix}.l3"));
                item + 1
            });
            assert_eq!(out, (1..=ITEMS as u64).collect::<Vec<_>>());
        }

        if !obs::enabled() {
            assert!(obs::flight::dump().is_empty(), "noop builds record nothing");
            continue;
        }
        let spans = spans_of(&prefix);
        let root =
            spans.values().find(|record| record.name == root_name).expect("fan-out root recorded");
        assert_eq!(root.parent, None);

        let leaves: Vec<&SpanRecord> =
            spans.values().filter(|record| record.name == format!("{prefix}.l3")).collect();
        assert_eq!(leaves.len(), ITEMS, "one innermost span per item");
        for leaf in leaves {
            assert_eq!(leaf.trace, root.trace, "every depth shares the fan-out's trace");
            let chain = ancestry(&spans, leaf);
            // Innermost-first: l3 → l2 → l1 → (executor.worker when threads
            // spawned) → root.
            let expected: Vec<String> = if executor.threads_for(ITEMS) > 1 {
                vec![
                    format!("{prefix}.l3"),
                    format!("{prefix}.l2"),
                    format!("{prefix}.l1"),
                    "executor.worker".to_string(),
                    root_name.clone(),
                ]
            } else {
                vec![
                    format!("{prefix}.l3"),
                    format!("{prefix}.l2"),
                    format!("{prefix}.l1"),
                    root_name.clone(),
                ]
            };
            assert_eq!(chain, expected, "threads = {threads}");
        }

        if executor.threads_for(ITEMS) > 1 {
            let workers: Vec<&SpanRecord> = spans
                .values()
                .filter(|record| record.name == "executor.worker" && record.trace == root.trace)
                .collect();
            assert_eq!(workers.len(), executor.threads_for(ITEMS), "one span per worker");
            let tasks: u64 = workers
                .iter()
                .map(|worker| {
                    assert_eq!(worker.parent, Some(root.span));
                    worker.attrs.iter().find(|(key, _)| *key == "tasks").expect("tasks attr").1
                })
                .sum();
            assert_eq!(tasks as usize, ITEMS, "chunks cover every item exactly once");
        }
    }
}

#[test]
fn untraced_fanouts_open_no_parented_workers() {
    // A fan-out with no open span still works; its worker spans (if any)
    // become roots rather than picking up a stale parent.
    let executor = Executor::new(4);
    let items: Vec<u64> = (0..16).collect();
    assert_eq!(obs::trace::current(), None);
    let out = executor.map(&items, |item| item * 2);
    assert_eq!(out.len(), 16);
    if !obs::enabled() {
        return;
    }
    for record in obs::flight::dump() {
        if record.name == "executor.worker" && record.parent.is_none() {
            // Root worker spans are allowed; what must never happen is a
            // parent id pointing into another test's tree on this thread.
            assert!(record.attrs.iter().any(|(key, _)| *key == "shard"));
        }
    }
}
