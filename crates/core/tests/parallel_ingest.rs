//! Determinism gate for the two-phase sharded ingest: on random worlds, the
//! dataset — columns, interner tables, verdict sets — and the full
//! `AnalysisReport` must be identical across thread counts {1, 2, 4, 8} and
//! across epoch slicings, and identical to the serial one-shot build.
//!
//! This is the property that lets batch and stream share one ingest code
//! path: the parallel decode fan-out is invisible in every observable
//! artifact, at any shard geometry.

use ethsim::BlockNumber;
use washtrade::dataset::Dataset;
use washtrade::parallel::Executor;
use washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions};
use washtrade::report::render_deterministic;
use workload::{WorkloadConfig, World};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

proptest::proptest! {
    #[test]
    fn parallel_ingest_is_deterministic_across_threads_and_slicings(
        seed in 0u64..40,
        budgets in proptest::collection::vec(1u64..150, 1..4),
    ) {
        let world = World::generate(WorkloadConfig::small(seed)).expect("world");
        let serial = Dataset::build(&world.chain, &world.directory);
        let tip = world.chain.current_block_number();

        for threads in THREAD_COUNTS {
            let executor = Executor::new(threads);

            // One-shot sharded build equals the serial one-shot build.
            let one_shot = Dataset::build_with(&world.chain, &world.directory, &executor);
            proptest::prop_assert_eq!(&one_shot, &serial, "one-shot at {} threads", threads);
            proptest::prop_assert_eq!(one_shot.interner.accounts(), serial.interner.accounts());
            proptest::prop_assert_eq!(one_shot.interner.nfts(), serial.interner.nfts());

            // Epoch-sliced sharded ingest equals it too: every epoch is
            // itself decoded in parallel shards, and the random budget cycle
            // cuts through planted activities at arbitrary blocks.
            let mut sliced = Dataset::default();
            let mut from = 0u64;
            let mut cycle = budgets.iter().cycle();
            while from <= tip.0 {
                let budget = *cycle.next().expect("non-empty budgets");
                let last = (from + budget - 1).min(tip.0);
                sliced.ingest_blocks(
                    &world.chain,
                    &world.directory,
                    BlockNumber(from),
                    BlockNumber(last),
                    &executor,
                );
                from = last + 1;
            }
            proptest::prop_assert_eq!(&sliced, &serial, "epoch-sliced at {} threads", threads);
        }
    }

    #[test]
    fn full_report_is_identical_across_thread_counts(seed in 0u64..20) {
        let world = World::generate(WorkloadConfig::small(seed)).expect("world");
        let input = input_of(&world);
        let options = |threads| AnalysisOptions { threads, collect_metrics: false };
        let baseline = render_deterministic(&analyze_with(input, options(1)));
        for threads in [2, 4, 8] {
            let report = analyze_with(input, options(threads));
            proptest::prop_assert_eq!(
                &render_deterministic(&report),
                &baseline,
                "report diverged at {} threads",
                threads
            );
        }
    }
}
