//! Interner and columnar-store invariants on generated worlds:
//!
//! * dense ids round-trip and enumerate `0..count` with no gaps,
//! * id assignment is **stream-stable**: interning epoch by epoch over
//!   [`EpochPlan::straddling`] (boundaries cutting through planted wash
//!   activities) yields exactly the id assignment of a one-shot build,
//! * [`TransferColumns`] per-NFT row slices resolve to exactly the per-NFT
//!   transfer vectors the address-keyed pipeline used to store, verified
//!   against an independent reconstruction from the raw chain logs.

use std::collections::HashMap;

use ethsim::Wei;
use ids::NftKey;
use tokens::NftId;
use washtrade::dataset::{Dataset, NftTransfer};
use workload::{EpochPlan, WorkloadConfig, World};

fn world(seed: u64) -> World {
    World::generate(WorkloadConfig::small(seed)).expect("world")
}

/// Independent reconstruction of the address-keyed pipeline's canonical
/// storage — one chronological `Vec<NftTransfer>` per NFT — straight from
/// the chain's logs, mirroring §III-A decode/compliance/annotation without
/// going through `TransferColumns`.
fn reference_histories(world: &World, dataset: &Dataset) -> HashMap<NftId, Vec<NftTransfer>> {
    let mut histories: HashMap<NftId, Vec<NftTransfer>> = HashMap::new();
    for entry in world.chain.logs(&Dataset::transfer_filter()) {
        let Some(decoded) = entry.log.decode_erc721_transfer() else {
            continue;
        };
        if !dataset.compliant_contracts.contains(&decoded.contract) {
            continue;
        }
        let tx = world.chain.transaction(entry.tx_hash).expect("log has transaction");
        let price = if !tx.value.is_zero() {
            tx.value
        } else {
            let erc20_paid: u128 = tx
                .logs
                .iter()
                .filter_map(|log| log.decode_erc20_transfer())
                .filter(|t| t.from == decoded.to)
                .map(|t| t.amount)
                .sum();
            Wei::new(erc20_paid)
        };
        let marketplace = tx.to.filter(|to| world.directory.by_contract(*to).is_some());
        let nft = NftId::new(decoded.contract, decoded.token_id);
        histories.entry(nft).or_default().push(NftTransfer {
            nft,
            from: decoded.from,
            to: decoded.to,
            tx_hash: entry.tx_hash,
            block: entry.block,
            timestamp: entry.timestamp,
            price,
            marketplace,
        });
    }
    histories
}

#[test]
fn ids_are_dense_and_round_trip_on_a_generated_world() {
    let world = world(21);
    let dataset = Dataset::build(&world.chain, &world.directory);
    let interner = &dataset.interner;
    assert!(interner.account_count() > 0 && interner.nft_count() > 0);
    for (index, &address) in interner.accounts().iter().enumerate() {
        let id = interner.account_id(address).expect("every table entry resolves");
        assert_eq!(id.index(), index, "account ids enumerate 0..count densely");
        assert_eq!(interner.address(id), address);
    }
    for (index, &nft) in interner.nfts().iter().enumerate() {
        let key = interner.nft_key(nft).expect("every table entry resolves");
        assert_eq!(key.index(), index, "nft keys enumerate 0..count densely");
        assert_eq!(interner.nft(key), nft);
    }
}

#[test]
fn epoch_by_epoch_interning_matches_one_shot_over_straddling_boundaries() {
    for seed in [3, 21, 77] {
        let world = world(seed);
        let batch = Dataset::build(&world.chain, &world.directory);

        // Ingest along the straddling plan: epoch boundaries cut through the
        // middle of planted activities, so ids for an activity's accounts
        // are assigned across different epochs.
        let plan = EpochPlan::straddling(&world, 5);
        let mut incremental = Dataset::default();
        let mut from = 0u64;
        for end in &plan.ends {
            let entries = world.chain.logs_in_blocks(
                ethsim::BlockNumber(from),
                *end,
                &Dataset::transfer_filter(),
            );
            incremental.apply_entries(&world.chain, &world.directory, &entries);
            from = end.0 + 1;
        }

        // Bit-for-bit: same columns, same id assignment, same verdicts.
        assert_eq!(incremental, batch, "seed {seed}: epoch-sliced dataset diverged");
        assert_eq!(
            incremental.interner.accounts(),
            batch.interner.accounts(),
            "seed {seed}: account id assignment is not stream-stable"
        );
        assert_eq!(incremental.interner.nfts(), batch.interner.nfts());
    }
}

#[test]
fn column_slices_equal_the_old_per_nft_vectors() {
    let world = world(5);
    let dataset = Dataset::build(&world.chain, &world.directory);
    let reference = reference_histories(&world, &dataset);

    assert_eq!(dataset.nft_count(), reference.len());
    let mut covered_rows = 0usize;
    for (&nft, expected) in &reference {
        let resolved = dataset.transfers_of(nft);
        assert_eq!(&resolved, expected, "history of {nft} diverged from the reference");
        let key = dataset.interner.nft_key(nft).expect("nft interned");
        assert_eq!(dataset.columns.transfer_count_of(key), expected.len());
        covered_rows += expected.len();
    }
    // The per-NFT slices partition the store: every row belongs to exactly
    // one NFT's slice.
    assert_eq!(covered_rows, dataset.transfer_count());
    for key in 0..dataset.nft_count() as u32 {
        for &row in dataset.columns.rows_of(NftKey(key)) {
            assert_eq!(dataset.columns.nft[row as usize], NftKey(key));
        }
    }
}

proptest::proptest! {
    #[test]
    fn interning_is_stream_stable_at_random_epoch_slicings(
        seed in 0u64..50,
        budgets in proptest::collection::vec(1u64..150, 1..5),
    ) {
        let world = World::generate(WorkloadConfig::small(seed)).expect("world");
        let batch = Dataset::build(&world.chain, &world.directory);

        let tip = world.chain.current_block_number().0;
        let mut incremental = Dataset::default();
        let mut from = 0u64;
        let mut cycle = budgets.iter().cycle();
        while from <= tip {
            let budget = *cycle.next().expect("non-empty budgets");
            let last = (from + budget - 1).min(tip);
            let entries = world.chain.logs_in_blocks(
                ethsim::BlockNumber(from),
                ethsim::BlockNumber(last),
                &Dataset::transfer_filter(),
            );
            incremental.apply_entries(&world.chain, &world.directory, &entries);
            from = last + 1;
        }
        proptest::prop_assert_eq!(&incremental, &batch);
    }
}
