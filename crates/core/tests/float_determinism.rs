//! Regression tests for floating-point accumulation order: every f64 in the
//! report must be a bitwise-stable function of the chain, not of map
//! iteration order, ingest slicing or thread count.
//!
//! The fragile spots are the `volume_eth`/`volume_usd` sums in Table I
//! (`Dataset::marketplace_volumes`) and the §V characterization: a sum taken
//! in `HashMap` iteration order (or in first-seen interning order) would
//! drift in the last ulp between runs and between the batch and streaming
//! pipelines. Both paths accumulate in sorted-identity order instead; these
//! tests pin that down with exact bit comparisons.

use washtrade::dataset::Dataset;
use washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions};
use workload::{WorkloadConfig, World};

fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

/// Exact f64 equality (same bits), with a readable failure message.
fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a:?} != {b:?}");
}

#[test]
fn marketplace_volumes_are_bitwise_stable_across_ingest_slicings() {
    let world = World::generate(WorkloadConfig::small(11)).expect("world");
    let batch = Dataset::build(&world.chain, &world.directory);

    // The same chain ingested in many small epochs: interning order is
    // unchanged, but accumulation must not depend on it either way.
    let tip = world.chain.current_block_number().0;
    let mut incremental = Dataset::default();
    let mut from = 0u64;
    while from <= tip {
        let last = (from + 17).min(tip);
        let entries = world.chain.logs_in_blocks(
            ethsim::BlockNumber(from),
            ethsim::BlockNumber(last),
            &Dataset::transfer_filter(),
        );
        incremental.apply_entries(&world.chain, &world.directory, &entries);
        from = last + 1;
    }

    let batch_rows = batch.marketplace_volumes(&world.directory, &world.oracle);
    let incremental_rows = incremental.marketplace_volumes(&world.directory, &world.oracle);
    assert_eq!(batch_rows.len(), incremental_rows.len());
    for (a, b) in batch_rows.iter().zip(&incremental_rows) {
        assert_eq!(a.name, b.name);
        assert_eq!((a.nfts, a.transactions), (b.nfts, b.transactions));
        assert_bits_eq(a.volume_eth, b.volume_eth, &format!("{} volume_eth", a.name));
        assert_bits_eq(a.volume_usd, b.volume_usd, &format!("{} volume_usd", a.name));
    }
    // Re-running on the same dataset is trivially stable too (guards against
    // any accidental map-order iteration inside the accumulation).
    let again = batch.marketplace_volumes(&world.directory, &world.oracle);
    for (a, b) in batch_rows.iter().zip(&again) {
        assert_bits_eq(a.volume_usd, b.volume_usd, &format!("{} volume_usd rerun", a.name));
    }
}

#[test]
fn characterization_floats_are_bitwise_identical_across_thread_counts() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = input_of(&world);
    let baseline = analyze_with(input, AnalysisOptions::single_threaded());
    assert!(baseline.characterization.total_volume_usd > 0.0);

    for threads in [2, 5, 0] {
        let report = analyze_with(input, AnalysisOptions { threads, ..AnalysisOptions::default() });
        let (a, b) = (&baseline.characterization, &report.characterization);
        assert_bits_eq(a.total_volume_usd, b.total_volume_usd, "total_volume_usd");
        assert_bits_eq(a.total_volume_eth, b.total_volume_eth, "total_volume_eth");
        assert_eq!(a.per_marketplace.len(), b.per_marketplace.len());
        for (row_a, row_b) in a.per_marketplace.iter().zip(&b.per_marketplace) {
            assert_eq!(row_a.name, row_b.name, "row order diverged at threads={threads}");
            assert_bits_eq(
                row_a.volume_usd,
                row_b.volume_usd,
                &format!("{} wash volume_usd", row_a.name),
            );
            assert_bits_eq(
                row_a.volume_eth,
                row_b.volume_eth,
                &format!("{} wash volume_eth", row_a.name),
            );
        }
        // Table I rides on the same sorted-identity accumulation.
        for (row_a, row_b) in baseline.table1.iter().zip(&report.table1) {
            assert_bits_eq(
                row_a.volume_usd,
                row_b.volume_usd,
                &format!("table1 {} volume_usd", row_a.name),
            );
        }
        // The full characterization (CDFs included) must compare equal.
        assert_eq!(a, b, "characterization diverged at threads={threads}");
    }
}
