//! # workload — calibrated synthetic NFT trading worlds
//!
//! The paper measures wash trading over the entire Ethereum history. A
//! reproduction cannot ship that history, so this crate generates a
//! deterministic synthetic substitute whose *composition* follows the paper's
//! reported statistics: the marketplace mix of legitimate trading (Table I),
//! the venue/volume mix of wash trading (Table II), the evidence-channel mix
//! the detectors rely on (Fig. 2), lifetimes (Fig. 4), account counts
//! (Fig. 6), pattern shapes (Fig. 7), reward-claiming behaviour (Table III)
//! and resale outcomes (§VI-B). Every planted activity is recorded as ground
//! truth so detection quality can be evaluated.
//!
//! * [`WorkloadConfig`] — how much of everything to generate;
//! * [`scenario`] — scenario specifications and the paper-calibrated sampler;
//! * [`WorldBuilder`] / [`World`] — execution of the configuration into a
//!   chain plus ground truth.
//!
//! ```no_run
//! use workload::{WorkloadConfig, World};
//!
//! let world = World::generate(WorkloadConfig::small(42)).expect("build world");
//! println!("{} wash activities planted", world.truth.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod epochs;
pub mod scenario;
pub mod truth;
pub mod world;

pub use builder::{BuildError, WorldBuilder};
pub use config::{WorkloadConfig, WorldScale};
pub use epochs::EpochPlan;
pub use scenario::{
    ExitEvidence, FundingEvidence, ScenarioPattern, ScenarioSampler, Venue, WashGoal,
    WashScenarioSpec,
};
pub use truth::WashActivityTruth;
pub use world::World;
