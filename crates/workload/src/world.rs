//! The generated world: everything the detection pipeline and the experiment
//! harness need, bundled together.

use std::collections::HashMap;

use ethsim::{Address, Chain};
use labels::LabelRegistry;
use marketplace::{Marketplace, MarketplaceDirectory};
use oracle::PriceOracle;
use tokens::TokenRegistry;

use crate::config::WorkloadConfig;
use crate::truth::WashActivityTruth;

/// A fully built synthetic world.
///
/// The fields mirror what the paper's authors had at hand: a synced node
/// ([`Chain`]), knowledge of marketplaces and their contracts
/// ([`MarketplaceDirectory`]), Etherscan-style labels ([`LabelRegistry`]),
/// historical prices ([`PriceOracle`]) — plus, because this is a simulation,
/// the ground truth of every planted wash-trading activity.
pub struct World {
    /// The configuration the world was generated from.
    pub config: WorkloadConfig,
    /// The chain with all executed transactions.
    pub chain: Chain,
    /// Deployed token contracts and their state.
    pub tokens: TokenRegistry,
    /// Account labels (exchanges, CeFi, games, DeFi, marketplaces).
    pub labels: LabelRegistry,
    /// Daily USD price series.
    pub oracle: PriceOracle,
    /// Marketplace address directory.
    pub directory: MarketplaceDirectory,
    /// Marketplace engines keyed by name (kept for post-hoc inspection of
    /// reward bookkeeping).
    pub marketplaces: HashMap<String, Marketplace>,
    /// Addresses of the ERC-165-compliant ERC-721 collections.
    pub collections: Vec<Address>,
    /// Ground truth of every planted wash-trading activity.
    pub truth: Vec<WashActivityTruth>,
}

impl World {
    /// Build a world directly from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::builder::BuildError`] from the builder.
    pub fn generate(config: WorkloadConfig) -> Result<Self, crate::builder::BuildError> {
        crate::builder::WorldBuilder::new(config).build()
    }

    /// Ground-truth activities planted on a specific marketplace (by name).
    pub fn truth_on(&self, marketplace_name: &str) -> Vec<&WashActivityTruth> {
        self.truth.iter().filter(|t| t.venue.marketplace_name() == Some(marketplace_name)).collect()
    }

    /// Slice this world's block range into `epochs` ingestion epochs whose
    /// boundaries straddle planted activities; convenience for
    /// [`crate::epochs::EpochPlan::straddling`].
    pub fn epoch_plan(&self, epochs: usize) -> crate::epochs::EpochPlan {
        crate::epochs::EpochPlan::straddling(self, epochs)
    }

    /// The set of all accounts that participate in any planted activity.
    pub fn wash_accounts(&self) -> Vec<Address> {
        let mut accounts: Vec<Address> =
            self.truth.iter().flat_map(|t| t.accounts.iter().copied()).collect();
        accounts.sort();
        accounts.dedup();
        accounts
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("chain", &self.chain)
            .field("collections", &self.collections.len())
            .field("wash_activities", &self.truth.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    #[test]
    fn world_accessors() {
        let world = World::generate(WorkloadConfig::small(5)).unwrap();
        let accounts = world.wash_accounts();
        assert!(!accounts.is_empty());
        assert!(accounts.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        let on_looksrare = world.truth_on("LooksRare");
        for truth in on_looksrare {
            assert_eq!(truth.venue.marketplace_name(), Some("LooksRare"));
        }
    }
}
