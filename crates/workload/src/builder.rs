//! The world builder: executes a [`WorkloadConfig`] into a fully populated
//! chain with marketplaces, tokens, background activity and planted
//! wash-trading scenarios, returning the [`World`] plus ground truth.

use std::collections::HashMap;

use ethsim::{Address, Chain, ChainError, Selector, Timestamp, TxRequest, Wei};
use labels::{LabelCategory, LabelRegistry};
use marketplace::{presets, MarketError, Marketplace, MarketplaceDirectory};
use oracle::PriceOracle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tokens::{NftId, TokenError, TokenRegistry};

use crate::config::WorkloadConfig;
use crate::scenario::{
    ExitEvidence, FundingEvidence, ScenarioPattern, ScenarioSampler, Venue, WashGoal,
    WashScenarioSpec,
};
use crate::truth::WashActivityTruth;
use crate::world::World;
use graphlib::PatternId;

/// Gas used by a direct (non-marketplace) NFT transfer.
const DIRECT_TRANSFER_GAS: u64 = 85_000;
/// Gas used by a mint transaction.
const MINT_GAS: u64 = 90_000;
/// Seconds advanced between consecutive events inside a day.
const EVENT_SPACING_SECS: u64 = 180;

/// Errors produced while building a world.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A chain operation failed.
    Chain(ChainError),
    /// A token operation failed.
    Token(TokenError),
    /// A marketplace operation failed.
    Market(MarketError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Chain(e) => write!(f, "chain error while building world: {e}"),
            BuildError::Token(e) => write!(f, "token error while building world: {e}"),
            BuildError::Market(e) => write!(f, "marketplace error while building world: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ChainError> for BuildError {
    fn from(e: ChainError) -> Self {
        BuildError::Chain(e)
    }
}
impl From<TokenError> for BuildError {
    fn from(e: TokenError) -> Self {
        BuildError::Token(e)
    }
}
impl From<MarketError> for BuildError {
    fn from(e: MarketError) -> Self {
        BuildError::Market(e)
    }
}

/// One scheduled event in the global timeline.
#[derive(Debug, Clone)]
enum Event {
    SeedCollection { collection_index: usize },
    NoncompliantActivity { index: usize },
    Erc1155Activity { index: usize },
    DexMint { index: usize },
    LegitSale { index: usize },
    Shuffle { index: usize },
    ScenarioFunding { scenario: usize },
    ScenarioAcquire { scenario: usize },
    ScenarioTrade { scenario: usize, step: usize },
    ScenarioResale { scenario: usize },
    ScenarioClaim { scenario: usize },
    ScenarioExit { scenario: usize },
}

/// Mutable per-scenario execution state.
#[derive(Debug, Clone)]
struct ScenarioRuntime {
    spec: WashScenarioSpec,
    accounts: Vec<Address>,
    prices: Vec<Wei>,
    nft: Option<NftId>,
    first_trade: Option<Timestamp>,
    last_trade: Option<Timestamp>,
    wash_volume: Wei,
    trade_hashes: Vec<ethsim::TxHash>,
    acquisition_price: Wei,
    acquired_at: Option<Timestamp>,
    resale_price: Option<Wei>,
    claim_hashes: Vec<ethsim::TxHash>,
    claimed_tokens: u128,
    gas_fees: Wei,
    marketplace_fees: Wei,
    collection: Address,
    collection_created_day: u64,
}

/// Builds a [`World`] from a [`WorkloadConfig`].
pub struct WorldBuilder {
    config: WorkloadConfig,
}

struct CollectionMeta {
    address: Address,
    created_day: u64,
}

impl WorldBuilder {
    /// Create a builder for the given configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        WorldBuilder { config }
    }

    /// Execute the configuration into a fully populated world.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if any underlying chain, token or marketplace
    /// operation fails; with a well-formed configuration this indicates a bug
    /// in the builder rather than bad input.
    pub fn build(self) -> Result<World, BuildError> {
        Runner::new(self.config)?.run()
    }
}

struct Runner {
    config: WorkloadConfig,
    rng: ChaCha8Rng,
    chain: Chain,
    tokens: TokenRegistry,
    labels: LabelRegistry,
    oracle: PriceOracle,
    engines: HashMap<String, Marketplace>,
    directory: MarketplaceDirectory,
    collections: Vec<CollectionMeta>,
    noncompliant: Vec<Address>,
    erc1155: Vec<Address>,
    dex_collection: Address,
    legit_traders: Vec<Address>,
    legit_owned: Vec<(NftId, Address)>,
    exchanges: Vec<Address>,
    scenarios: Vec<ScenarioRuntime>,
    gas_price: Wei,
}

impl Runner {
    fn new(config: WorkloadConfig) -> Result<Self, BuildError> {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut chain = Chain::new(config.start);
        let mut tokens = TokenRegistry::new();
        let mut labels = LabelRegistry::new();
        let oracle = PriceOracle::paper_presets(
            config.start,
            config.duration_days as usize + 90,
            config.seed,
        );
        let gas_price = Wei::from_gwei(config.gas_price_gwei);

        // Marketplaces.
        let mut engines = HashMap::new();
        let mut directory = MarketplaceDirectory::new();
        for spec in presets::all() {
            let name = spec.name.clone();
            let engine = Marketplace::deploy(&mut chain, &mut tokens, &mut labels, spec)?;
            directory.add(engine.info());
            engines.insert(name, engine);
        }

        // Service accounts: exchanges, CeFi, game operator, DeFi router.
        let mut exchanges = Vec::new();
        for name in ["Coinbase", "Binance"] {
            let address = chain.create_eoa(&format!("exchange-{name}"))?;
            chain.fund(address, Wei::from_eth(5_000_000.0));
            labels.insert(address, name, LabelCategory::Exchange);
            exchanges.push(address);
        }
        let cefi = chain.create_eoa("cefi-custody")?;
        chain.fund(cefi, Wei::from_eth(100_000.0));
        labels.insert(cefi, "Nexo Custody", LabelCategory::CeFi);
        let game = chain.create_eoa("game-operator")?;
        chain.fund(game, Wei::from_eth(10_000.0));
        labels.insert(game, "EthermonGame", LabelCategory::Game);
        let defi_router = chain.deploy_contract(
            "uniswap-router",
            tokens::compliance::generic_contract_bytecode(0xde),
        )?;
        labels.insert(defi_router, "Uniswap V3: Router", LabelCategory::DeFi);

        // Collections. Creation days are spread over the first 60% of the
        // period; the activity near a collection's launch clusters after it
        // (Fig. 5).
        let mut collections = Vec::with_capacity(config.collections);
        for i in 0..config.collections {
            let created_day = rng.gen_range(0..(config.duration_days * 6 / 10).max(1));
            let address = tokens.deploy_erc721(
                &mut chain,
                &format!("collection-{i}"),
                &format!("Collection {i}"),
                true,
                config.start.plus_days(created_day),
            )?;
            collections.push(CollectionMeta { address, created_day });
        }
        let mut noncompliant = Vec::new();
        for i in 0..config.non_compliant_collections {
            let created_day = rng.gen_range(0..(config.duration_days / 2).max(1));
            let address = tokens.deploy_erc721(
                &mut chain,
                &format!("rogue-collection-{i}"),
                &format!("Rogue {i}"),
                false,
                config.start.plus_days(created_day),
            )?;
            noncompliant.push(address);
        }
        let mut erc1155 = Vec::new();
        for i in 0..config.erc1155_collections {
            erc1155.push(tokens.deploy_erc1155(
                &mut chain,
                &format!("erc1155-{i}"),
                &format!("MultiToken {i}"),
            )?);
        }
        // DEX position NFTs (UniswapV3-like noise). ERC-721 compliant, as on
        // the real chain, but never wash traded.
        let dex_collection = tokens.deploy_erc721(
            &mut chain,
            "uniswap-v3-positions",
            "Uniswap V3 Positions",
            true,
            config.start,
        )?;
        labels.insert(dex_collection, "Uniswap V3: Positions NFT", LabelCategory::DeFi);

        // Ordinary traders.
        let mut legit_traders = Vec::with_capacity(config.legit_traders);
        for i in 0..config.legit_traders {
            let address = chain.create_eoa(&format!("legit-trader-{i}"))?;
            chain.fund(address, Wei::from_eth(300.0));
            legit_traders.push(address);
        }

        // Wash scenarios.
        let sampler = ScenarioSampler {
            collections: collections.len(),
            trader_pool: (config.wash_activities * 2).max(8),
            serial_fraction: config.serial_trader_fraction,
            duration_days: config.duration_days,
        };
        let mut specs = sampler.sample_many(&mut rng, config.wash_activities);
        // Cluster activities shortly after their collection's creation (Fig. 5).
        for spec in &mut specs {
            let created = collections[spec.collection_index].created_day;
            let uniform: f64 = rng.gen_range(0.0f64..1.0);
            let lag = (-(1.0 - uniform).ln() * 20.0).round() as u64;
            let latest =
                config.duration_days.saturating_sub(spec.lifetime_days + 20).max(created + 1);
            spec.start_day = (created + 1 + lag).min(latest);
        }
        let scenarios = specs
            .into_iter()
            .map(|spec| {
                let collection = collections[spec.collection_index].address;
                let collection_created_day = collections[spec.collection_index].created_day;
                let walk_len = spec.pattern.walk().len() - 1;
                let steps = spec.trades.max(walk_len);
                let mut prices = Vec::with_capacity(steps);
                let mut price = Wei::from_eth(spec.base_price_eth);
                for _ in 0..steps {
                    prices.push(price);
                    if spec.escalate_prices {
                        price = Wei::new(price.raw() / 100 * 118);
                    }
                }
                ScenarioRuntime {
                    accounts: Vec::new(),
                    prices,
                    nft: None,
                    first_trade: None,
                    last_trade: None,
                    wash_volume: Wei::ZERO,
                    trade_hashes: Vec::new(),
                    acquisition_price: Wei::ZERO,
                    acquired_at: None,
                    resale_price: None,
                    claim_hashes: Vec::new(),
                    claimed_tokens: 0,
                    gas_fees: Wei::ZERO,
                    marketplace_fees: Wei::ZERO,
                    collection,
                    collection_created_day,
                    spec,
                }
            })
            .collect();

        Ok(Runner {
            config,
            rng,
            chain,
            tokens,
            labels,
            oracle,
            engines,
            directory,
            collections,
            noncompliant,
            erc1155,
            dex_collection,
            legit_traders,
            legit_owned: Vec::new(),
            exchanges,
            scenarios,
            gas_price,
        })
    }

    fn run(mut self) -> Result<World, BuildError> {
        let events = self.schedule();
        let mut current_day = 0u64;
        for (day, _, event) in events {
            while current_day < day {
                self.accrue_day(current_day);
                current_day += 1;
            }
            let day_start = self.config.start.plus_days(day);
            let next = std::cmp::max(
                self.chain.current_timestamp().plus_secs(EVENT_SPACING_SECS),
                day_start,
            );
            self.chain.advance_to(next)?;
            self.execute(event)?;
        }
        // Close out the remaining days so late rewards accrue.
        for day in current_day..=self.config.duration_days {
            self.accrue_day(day);
        }

        if obs::recording() {
            // One ring entry per planted activity, named by its pattern —
            // the dynamic-name mirror of the static `event!` milestones.
            for scenario in &self.scenarios {
                let spec = &scenario.spec;
                obs::event_dynamic(
                    &format!("workload.scenario.{}", spec.pattern.label()),
                    format!(
                        "id {}: {} participants, {} trades, venue {:?}, goal {:?}",
                        spec.id,
                        spec.participants(),
                        scenario.trade_hashes.len(),
                        spec.venue,
                        spec.goal,
                    ),
                );
            }
        }

        let truth = self.scenarios.iter().map(|s| self.truth_of(s)).collect();
        Ok(World {
            config: self.config,
            chain: self.chain,
            tokens: self.tokens,
            labels: self.labels,
            oracle: self.oracle,
            directory: self.directory,
            marketplaces: self.engines,
            collections: self.collections.iter().map(|c| c.address).collect(),
            truth,
        })
    }

    fn accrue_day(&mut self, day_offset: u64) {
        let absolute_day = self.config.start.plus_days(day_offset).day();
        for engine in self.engines.values_mut() {
            engine.accrue_rewards_for_day(absolute_day);
        }
    }

    /// Build the global `(day, sequence, event)` timeline.
    fn schedule(&mut self) -> Vec<(u64, u32, Event)> {
        let mut events: Vec<(u64, u32, Event)> = Vec::new();
        let mut sequence = 0u32;
        let mut push = |events: &mut Vec<(u64, u32, Event)>, day: u64, event: Event| {
            events.push((day, sequence, event));
            sequence += 1;
        };

        for (index, collection) in self.collections.iter().enumerate() {
            push(
                &mut events,
                collection.created_day,
                Event::SeedCollection { collection_index: index },
            );
        }
        for index in 0..self.noncompliant.len() {
            let day = self.rng.gen_range(1..self.config.duration_days.max(2));
            push(&mut events, day, Event::NoncompliantActivity { index });
        }
        for index in 0..self.erc1155.len() {
            let day = self.rng.gen_range(1..self.config.duration_days.max(2));
            push(&mut events, day, Event::Erc1155Activity { index });
        }
        for index in 0..self.config.dex_position_nfts {
            let day = self.rng.gen_range(0..self.config.duration_days.max(1));
            push(&mut events, day, Event::DexMint { index });
        }
        for index in 0..self.config.legit_sales {
            let day = self.rng.gen_range(1..self.config.duration_days.max(2));
            push(&mut events, day, Event::LegitSale { index });
        }
        for index in 0..self.config.zero_volume_shuffles {
            let day = self.rng.gen_range(1..self.config.duration_days.max(2));
            push(&mut events, day, Event::Shuffle { index });
        }

        for (index, runtime) in self.scenarios.iter().enumerate() {
            let spec = &runtime.spec;
            let start = spec.start_day;
            let acquire_lead = if spec.acquire_externally {
                // §V-B: 39% bought the same day, 75% within 14 days.
                [0u64, 0, 1, 2, 3, 5, 8, 12, 20][self.rng.gen_range(0..9)]
            } else {
                0
            };
            // Funding must precede the acquisition (the first colluder pays for
            // the NFT out of the planted funds), which precedes the trades.
            let acquire_day = start.saturating_sub(acquire_lead);
            let funding_day = acquire_day.saturating_sub(1);
            push(&mut events, funding_day, Event::ScenarioFunding { scenario: index });
            push(&mut events, acquire_day, Event::ScenarioAcquire { scenario: index });
            let steps = runtime.prices.len();
            for step in 0..steps {
                let day = if steps <= 1 || spec.lifetime_days == 0 {
                    start
                } else {
                    start + (spec.lifetime_days * step as u64) / (steps as u64 - 1)
                };
                push(&mut events, day, Event::ScenarioTrade { scenario: index, step });
            }
            let last_day = start + spec.lifetime_days;
            if matches!(spec.goal, WashGoal::Resale { resale_price_eth: Some(_) }) {
                let lag = [0u64, 0, 1, 3, 7, 14, 25][self.rng.gen_range(0..7)];
                push(&mut events, last_day + lag, Event::ScenarioResale { scenario: index });
            }
            if matches!(spec.goal, WashGoal::RewardExploit { claims: true }) {
                push(&mut events, last_day + 1, Event::ScenarioClaim { scenario: index });
            }
            if spec.exit != ExitEvidence::None {
                push(&mut events, last_day + 2, Event::ScenarioExit { scenario: index });
            }
        }

        events.sort_by_key(|(day, seq, _)| (*day, *seq));
        events
    }

    fn execute(&mut self, event: Event) -> Result<(), BuildError> {
        match event {
            Event::SeedCollection { collection_index } => self.seed_collection(collection_index),
            Event::NoncompliantActivity { index } => self.noncompliant_activity(index),
            Event::Erc1155Activity { index } => self.erc1155_activity(index),
            Event::DexMint { index } => self.dex_mint(index),
            Event::LegitSale { index } => self.legit_sale(index),
            Event::Shuffle { index } => self.shuffle(index),
            Event::ScenarioFunding { scenario } => self.scenario_funding(scenario),
            Event::ScenarioAcquire { scenario } => self.scenario_acquire(scenario),
            Event::ScenarioTrade { scenario, step } => self.scenario_trade(scenario, step),
            Event::ScenarioResale { scenario } => self.scenario_resale(scenario),
            Event::ScenarioClaim { scenario } => self.scenario_claim(scenario),
            Event::ScenarioExit { scenario } => self.scenario_exit(scenario),
        }
    }

    // ------------------------------------------------------------------
    // Low-level helpers
    // ------------------------------------------------------------------

    fn ensure_account(&mut self, seed: &str, min_balance: Wei) -> Result<Address, BuildError> {
        let address = Address::derived(seed);
        if !self.chain.has_account(address) {
            self.chain.register_eoa(address)?;
        }
        if self.chain.balance(address) < min_balance {
            let top_up = min_balance - self.chain.balance(address);
            self.chain.fund(address, top_up);
        }
        Ok(address)
    }

    fn mint_nft(&mut self, collection: Address, to: Address) -> Result<NftId, BuildError> {
        let (nft, log) = self
            .tokens
            .erc721_mut(collection)
            .ok_or(TokenError::UnknownContract(collection))?
            .mint(to);
        let request = TxRequest::contract_call(
            to,
            collection,
            Selector::of("mint(address)"),
            Wei::ZERO,
            MINT_GAS,
            self.gas_price,
        )
        .with_log(log);
        self.chain.submit(request)?;
        Ok(nft)
    }

    /// A direct, off-marketplace sale: the buyer pays the seller in the same
    /// transaction that carries the ERC-721 transfer log. A zero price models
    /// a plain ownership transfer.
    fn direct_sale(
        &mut self,
        nft: NftId,
        seller: Address,
        buyer: Address,
        price: Wei,
    ) -> Result<ethsim::TxHash, BuildError> {
        let log = self
            .tokens
            .erc721_mut(nft.contract)
            .ok_or(TokenError::UnknownContract(nft.contract))?
            .transfer(seller, buyer, nft.token_id)?;
        let request = TxRequest {
            from: buyer,
            to: Some(seller),
            value: price,
            gas_used: DIRECT_TRANSFER_GAS,
            gas_price: self.gas_price,
            input: Vec::new(),
            logs: vec![log],
            internal_transfers: Vec::new(),
        };
        Ok(self.chain.submit(request)?)
    }

    /// A zero-payment ownership transfer sent to the NFT contract itself
    /// (`transferFrom`-style), as wash traders moving assets between their
    /// own wallets do.
    fn free_transfer(
        &mut self,
        nft: NftId,
        from: Address,
        to: Address,
    ) -> Result<ethsim::TxHash, BuildError> {
        let log = self
            .tokens
            .erc721_mut(nft.contract)
            .ok_or(TokenError::UnknownContract(nft.contract))?
            .transfer(from, to, nft.token_id)?;
        let request = TxRequest::contract_call(
            from,
            nft.contract,
            Selector::of("transferFrom(address,address,uint256)"),
            Wei::ZERO,
            DIRECT_TRANSFER_GAS,
            self.gas_price,
        )
        .with_log(log);
        Ok(self.chain.submit(request)?)
    }

    fn marketplace_sale(
        &mut self,
        venue: Venue,
        nft: NftId,
        seller: Address,
        buyer: Address,
        price: Wei,
    ) -> Result<marketplace::SaleReceipt, BuildError> {
        let name = venue.marketplace_name().expect("marketplace venue");
        let engine = self.engines.get_mut(name).expect("all presets deployed");
        Ok(engine.execute_sale(
            &mut self.chain,
            &mut self.tokens,
            seller,
            buyer,
            nft,
            price,
            self.gas_price,
        )?)
    }

    // ------------------------------------------------------------------
    // Background activity
    // ------------------------------------------------------------------

    fn seed_collection(&mut self, collection_index: usize) -> Result<(), BuildError> {
        let collection = self.collections[collection_index].address;
        let mints = self.rng.gen_range(3..=6);
        for _ in 0..mints {
            let owner = self.legit_traders[self.rng.gen_range(0..self.legit_traders.len())];
            let nft = self.mint_nft(collection, owner)?;
            self.legit_owned.push((nft, owner));
        }
        Ok(())
    }

    fn noncompliant_activity(&mut self, index: usize) -> Result<(), BuildError> {
        let contract = self.noncompliant[index];
        let a = self.ensure_account(&format!("rogue-user-{index}-a"), Wei::from_eth(5.0))?;
        let b = self.ensure_account(&format!("rogue-user-{index}-b"), Wei::from_eth(5.0))?;
        let nft = self.mint_nft(contract, a)?;
        // Even a suspicious-looking round trip on a non-compliant contract
        // must be excluded by the compliance filter.
        self.direct_sale(nft, a, b, Wei::from_eth(1.0))?;
        self.direct_sale(nft, b, a, Wei::from_eth(1.0))?;
        Ok(())
    }

    fn erc1155_activity(&mut self, index: usize) -> Result<(), BuildError> {
        let contract = self.erc1155[index];
        let operator = self.ensure_account(&format!("erc1155-user-{index}"), Wei::from_eth(2.0))?;
        let friend = self.ensure_account(&format!("erc1155-friend-{index}"), Wei::from_eth(2.0))?;
        let token =
            self.tokens.erc1155_mut(contract).ok_or(TokenError::UnknownContract(contract))?;
        let mint_log = token.mint(operator, operator, index as u64, 10);
        let transfer_log = token.transfer(operator, operator, friend, index as u64, 4)?;
        let request = TxRequest::contract_call(
            operator,
            contract,
            Selector::of("safeTransferFrom(address,address,uint256,uint256,bytes)"),
            Wei::ZERO,
            120_000,
            self.gas_price,
        )
        .with_logs([mint_log, transfer_log]);
        self.chain.submit(request)?;
        Ok(())
    }

    fn dex_mint(&mut self, index: usize) -> Result<(), BuildError> {
        let owner = self.legit_traders[index % self.legit_traders.len()];
        self.mint_nft(self.dex_collection, owner)?;
        Ok(())
    }

    fn legit_sale(&mut self, _index: usize) -> Result<(), BuildError> {
        if self.legit_owned.is_empty() {
            // Nothing minted yet: mint one to a random trader first.
            let collection =
                self.collections[self.rng.gen_range(0..self.collections.len())].address;
            let owner = self.legit_traders[self.rng.gen_range(0..self.legit_traders.len())];
            let nft = self.mint_nft(collection, owner)?;
            self.legit_owned.push((nft, owner));
        }
        let slot = self.rng.gen_range(0..self.legit_owned.len());
        let (nft, seller) = self.legit_owned[slot];
        let mut buyer = self.legit_traders[self.rng.gen_range(0..self.legit_traders.len())];
        if buyer == seller {
            buyer = self.legit_traders
                [(self.rng.gen_range(0..self.legit_traders.len()) + 1) % self.legit_traders.len()];
            if buyer == seller {
                return Ok(());
            }
        }
        // Venue mix of ordinary marketplace activity (Table I transaction
        // counts): OpenSea dominates, LooksRare is rare but high-value.
        let venue_draw: f64 = self.rng.gen_range(0.0..1.0);
        let (venue, price_eth) = if venue_draw < 0.955 {
            (Venue::OpenSea, self.rng.gen_range(0.05..3.0))
        } else if venue_draw < 0.984 {
            (Venue::Foundation, self.rng.gen_range(0.05..1.0))
        } else if venue_draw < 0.990 {
            (Venue::SuperRare, self.rng.gen_range(0.2..2.0))
        } else if venue_draw < 0.995 {
            (Venue::Rarible, self.rng.gen_range(0.05..2.0))
        } else if venue_draw < 0.998 {
            (Venue::Decentraland, self.rng.gen_range(0.3..3.0))
        } else {
            (Venue::LooksRare, self.rng.gen_range(5.0..60.0))
        };
        let price = Wei::from_eth(price_eth);
        // Make sure the buyer can pay.
        if self.chain.balance(buyer) < price.saturating_add(Wei::from_eth(1.0)) {
            self.chain.fund(buyer, price.saturating_add(Wei::from_eth(2.0)));
        }
        self.marketplace_sale(venue, nft, seller, buyer, price)?;
        self.legit_owned[slot] = (nft, buyer);
        Ok(())
    }

    fn shuffle(&mut self, index: usize) -> Result<(), BuildError> {
        // A clique of related wallets moving an NFT around for free: forms an
        // SCC but is dropped by the zero-volume refinement step.
        let size = self.rng.gen_range(2..=3);
        let mut members = Vec::with_capacity(size);
        for j in 0..size {
            members.push(self.ensure_account(&format!("shuffle-{index}-{j}"), Wei::from_eth(2.0))?);
        }
        let collection = self.collections[self.rng.gen_range(0..self.collections.len())].address;
        let nft = self.mint_nft(collection, members[0])?;
        for hop in 0..size {
            let from = members[hop % size];
            let to = members[(hop + 1) % size];
            self.free_transfer(nft, from, to)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Wash-trading scenarios
    // ------------------------------------------------------------------

    fn scenario_funding(&mut self, index: usize) -> Result<(), BuildError> {
        // Resolve accounts and work out how much each needs.
        let (seeds, funder, max_price, participants) = {
            let runtime = &self.scenarios[index];
            let max_price = runtime.prices.iter().copied().max().unwrap_or(Wei::ZERO);
            (
                runtime.spec.account_seeds.clone(),
                runtime.spec.funder,
                max_price,
                runtime.spec.participants(),
            )
        };
        let need = Wei::new(max_price.raw() / 100 * 130).saturating_add(Wei::from_eth(3.0));
        let mut accounts = Vec::with_capacity(participants);
        for seed in &seeds {
            let address = Address::derived(seed);
            if !self.chain.has_account(address) {
                self.chain.register_eoa(address)?;
            }
            accounts.push(address);
        }

        match funder {
            FundingEvidence::None => {
                for account in &accounts {
                    self.top_up(*account, need);
                }
            }
            FundingEvidence::Internal => {
                let leader = accounts[0];
                let total = Wei::new(need.raw() * accounts.len() as u128)
                    .saturating_add(Wei::from_eth(2.0));
                self.top_up(leader, total);
                let mut gas = Wei::ZERO;
                for account in accounts.iter().skip(1) {
                    let request = TxRequest::ether_transfer(leader, *account, need, self.gas_price);
                    gas += request.fee();
                    self.chain.submit(request)?;
                }
                self.scenarios[index].gas_fees += gas;
            }
            FundingEvidence::External => {
                let funder_account =
                    self.ensure_account(&format!("scenario-{index}-funder"), Wei::ZERO)?;
                let total = Wei::new(need.raw() * (accounts.len() as u128 + 1));
                self.chain.fund(funder_account, total);
                for account in &accounts {
                    self.chain.submit(TxRequest::ether_transfer(
                        funder_account,
                        *account,
                        need,
                        self.gas_price,
                    ))?;
                }
            }
            FundingEvidence::Exchange => {
                let exchange = self.exchanges[index % self.exchanges.len()];
                for account in &accounts {
                    self.chain.submit(TxRequest::ether_transfer(
                        exchange,
                        *account,
                        need,
                        self.gas_price,
                    ))?;
                }
            }
        }
        self.scenarios[index].accounts = accounts;
        Ok(())
    }

    fn scenario_acquire(&mut self, index: usize) -> Result<(), BuildError> {
        let (collection, first_account, acquire_externally, venue, base_price) = {
            let runtime = &self.scenarios[index];
            (
                runtime.collection,
                runtime.accounts[0],
                runtime.spec.acquire_externally,
                runtime.spec.venue,
                runtime.prices.first().copied().unwrap_or(Wei::from_eth(0.1)),
            )
        };
        let (nft, acquisition_price, gas) = if acquire_externally {
            let holder =
                self.ensure_account(&format!("scenario-{index}-holder"), Wei::from_eth(2.0))?;
            let nft = self.mint_nft(collection, holder)?;
            let price = Wei::new(base_price.raw() / 100 * 30).saturating_add(Wei::from_eth(0.01));
            // Serial wash traders share accounts across scenarios, so another
            // scenario's exit sweep may have drained this one between our
            // funding day and today; restore the float before buying.
            if self.chain.balance(first_account) < price.saturating_add(Wei::from_eth(1.0)) {
                self.top_up(first_account, price.saturating_add(Wei::from_eth(2.0)));
            }
            let gas = match venue.marketplace_name() {
                Some(_) => {
                    let receipt =
                        self.marketplace_sale(venue, nft, holder, first_account, price)?;
                    self.scenarios[index].marketplace_fees += receipt.fee;
                    receipt.gas_fee
                }
                None => {
                    self.direct_sale(nft, holder, first_account, price)?;
                    Wei::new(DIRECT_TRANSFER_GAS as u128 * self.gas_price.raw())
                }
            };
            (nft, price, gas)
        } else {
            let nft = self.mint_nft(collection, first_account)?;
            (nft, Wei::ZERO, Wei::new(MINT_GAS as u128 * self.gas_price.raw()))
        };
        let runtime = &mut self.scenarios[index];
        runtime.nft = Some(nft);
        runtime.acquisition_price = acquisition_price;
        runtime.acquired_at = Some(self.chain.current_timestamp());
        runtime.gas_fees += gas;
        Ok(())
    }

    fn scenario_trade(&mut self, index: usize, step: usize) -> Result<(), BuildError> {
        let (nft, venue, walk, price) = {
            let runtime = &self.scenarios[index];
            let walk = runtime.spec.pattern.walk();
            (
                runtime.nft.expect("acquire scheduled before trades"),
                runtime.spec.venue,
                walk,
                runtime.prices[step],
            )
        };
        let hop = step % (walk.len() - 1);
        let seller = self.scenarios[index].accounts[walk[hop]];
        let buyer = self.scenarios[index].accounts[walk[hop + 1]];
        // Top the buyer up if repeated large trades drained it (fees erode the
        // float each round trip).
        if self.chain.balance(buyer) < price.saturating_add(Wei::from_eth(1.0)) {
            self.top_up(buyer, price.saturating_add(Wei::from_eth(2.0)));
        }
        let (tx_hash, fee, gas) = match venue.marketplace_name() {
            Some(_) => {
                let receipt = self.marketplace_sale(venue, nft, seller, buyer, price)?;
                (receipt.tx_hash, receipt.fee, receipt.gas_fee)
            }
            None => {
                let hash = self.direct_sale(nft, seller, buyer, price)?;
                (hash, Wei::ZERO, Wei::new(DIRECT_TRANSFER_GAS as u128 * self.gas_price.raw()))
            }
        };
        let now = self.chain.current_timestamp();
        let runtime = &mut self.scenarios[index];
        runtime.first_trade.get_or_insert(now);
        runtime.last_trade = Some(now);
        runtime.wash_volume += price;
        runtime.trade_hashes.push(tx_hash);
        runtime.marketplace_fees += fee;
        runtime.gas_fees += gas;
        Ok(())
    }

    fn scenario_resale(&mut self, index: usize) -> Result<(), BuildError> {
        let (nft, venue, resale_price, owner) = {
            let runtime = &self.scenarios[index];
            let WashGoal::Resale { resale_price_eth: Some(price) } = runtime.spec.goal else {
                return Ok(());
            };
            let walk = runtime.spec.pattern.walk();
            (
                runtime.nft.expect("acquired"),
                runtime.spec.venue,
                Wei::from_eth(price),
                runtime.accounts[*walk.last().expect("non-empty walk")],
            )
        };
        let victim = self.ensure_account(
            &format!("scenario-{index}-victim"),
            resale_price.saturating_add(Wei::from_eth(2.0)),
        )?;
        match venue.marketplace_name() {
            Some(_) => {
                let receipt = self.marketplace_sale(venue, nft, owner, victim, resale_price)?;
                self.scenarios[index].marketplace_fees += receipt.fee;
            }
            None => {
                self.direct_sale(nft, owner, victim, resale_price)?;
            }
        }
        self.scenarios[index].resale_price = Some(resale_price);
        Ok(())
    }

    fn scenario_claim(&mut self, index: usize) -> Result<(), BuildError> {
        let (venue, accounts) = {
            let runtime = &self.scenarios[index];
            (runtime.spec.venue, runtime.accounts.clone())
        };
        let Some(name) = venue.marketplace_name() else {
            return Ok(());
        };
        let engine = self.engines.get_mut(name).expect("deployed");
        if engine.reward_distributor.is_none() {
            return Ok(());
        }
        let mut unique = accounts;
        unique.sort();
        unique.dedup();
        for account in unique {
            if engine.pending_reward(account) == 0 {
                continue;
            }
            let receipt =
                engine.claim_rewards(&mut self.chain, &mut self.tokens, account, self.gas_price)?;
            let runtime = &mut self.scenarios[index];
            runtime.claim_hashes.push(receipt.tx_hash);
            runtime.claimed_tokens += receipt.token_amount;
            runtime.gas_fees += Wei::new(marketplace::CLAIM_GAS as u128 * self.gas_price.raw());
        }
        Ok(())
    }

    fn scenario_exit(&mut self, index: usize) -> Result<(), BuildError> {
        let (exit, accounts) = {
            let runtime = &self.scenarios[index];
            (runtime.spec.exit, runtime.accounts.clone())
        };
        let mut unique = accounts.clone();
        unique.sort();
        unique.dedup();
        let target = match exit {
            ExitEvidence::None => return Ok(()),
            ExitEvidence::Internal => accounts[0],
            ExitEvidence::External => {
                self.ensure_account(&format!("scenario-{index}-exit"), Wei::ZERO)?
            }
        };
        let mut gas = Wei::ZERO;
        for account in unique {
            if account == target {
                continue;
            }
            let balance = self.chain.balance(account);
            let keepback = Wei::from_eth(0.5);
            if balance <= keepback {
                continue;
            }
            let request =
                TxRequest::ether_transfer(account, target, balance - keepback, self.gas_price);
            gas += request.fee();
            self.chain.submit(request)?;
        }
        self.scenarios[index].gas_fees += gas;
        Ok(())
    }

    fn top_up(&mut self, account: Address, target: Wei) {
        let balance = self.chain.balance(account);
        if balance < target {
            self.chain.fund(account, target - balance);
        }
    }

    fn truth_of(&self, runtime: &ScenarioRuntime) -> WashActivityTruth {
        let spec = &runtime.spec;
        let fallback = self.config.start.plus_days(spec.start_day);
        WashActivityTruth {
            id: spec.id,
            nft: runtime.nft.unwrap_or(NftId::new(runtime.collection, u64::MAX)),
            venue: spec.venue,
            marketplace_contract: spec
                .venue
                .marketplace_name()
                .and_then(|name| self.directory.by_name(name))
                .map(|info| info.contract),
            accounts: runtime.accounts.clone(),
            pattern: spec.pattern,
            funder: spec.funder,
            exit: spec.exit,
            zero_risk: spec.is_zero_risk(),
            goal: spec.goal,
            first_trade: runtime.first_trade.unwrap_or(fallback),
            last_trade: runtime.last_trade.unwrap_or(fallback),
            wash_volume: runtime.wash_volume,
            trade_tx_hashes: runtime.trade_hashes.clone(),
            acquisition_price: runtime.acquisition_price,
            acquired_at: runtime.acquired_at.unwrap_or(fallback),
            resale_price: runtime.resale_price,
            claim_tx_hashes: runtime.claim_hashes.clone(),
            claimed_tokens: runtime.claimed_tokens,
            gas_fees: runtime.gas_fees,
            marketplace_fees: runtime.marketplace_fees,
            collection: runtime.collection,
            collection_created_day: runtime.collection_created_day,
        }
    }
}

/// Convenience: the pattern id of a self-trade, used by a few consumers.
pub fn self_trade_pattern() -> ScenarioPattern {
    ScenarioPattern::Catalogued(PatternId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    #[test]
    fn small_world_builds_and_has_expected_ingredients() {
        let world = WorldBuilder::new(WorkloadConfig::small(7)).build().expect("build");
        let stats = world.chain.stats();
        assert!(stats.transactions > 200, "expected a busy chain, got {stats:?}");
        assert_eq!(world.truth.len(), 40);
        assert_eq!(world.directory.len(), 6);
        // Every executed scenario traded its NFT at least once.
        for truth in &world.truth {
            assert!(!truth.trade_tx_hashes.is_empty(), "scenario {} has no trades", truth.id);
            assert!(truth.last_trade >= truth.first_trade);
            assert_eq!(truth.accounts.len(), truth.pattern.participants());
        }
        // Reward claims only happen on reward venues.
        for truth in &world.truth {
            if truth.claimed_rewards() {
                assert!(truth.venue.has_reward_system());
                assert!(truth.claimed_tokens > 0);
            }
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = WorldBuilder::new(WorkloadConfig::small(11)).build().unwrap();
        let b = WorldBuilder::new(WorkloadConfig::small(11)).build().unwrap();
        assert_eq!(a.chain.stats(), b.chain.stats());
        assert_eq!(a.truth.len(), b.truth.len());
        for (x, y) in a.truth.iter().zip(b.truth.iter()) {
            assert_eq!(x.nft, y.nft);
            assert_eq!(x.wash_volume, y.wash_volume);
            assert_eq!(x.accounts, y.accounts);
        }
        let c = WorldBuilder::new(WorkloadConfig::small(12)).build().unwrap();
        assert_ne!(a.chain.stats().transactions, c.chain.stats().transactions);
    }

    #[test]
    fn zero_risk_scenarios_were_minted_not_bought() {
        let world = WorldBuilder::new(WorkloadConfig::small(21)).build().unwrap();
        for truth in &world.truth {
            if truth.zero_risk {
                assert!(truth.acquisition_price.is_zero());
                assert!(truth.resale_price.is_none());
            }
        }
    }
}
