//! Workload configuration: how much of everything to generate.

use ethsim::Timestamp;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic world.
///
/// The defaults are calibrated so that the *proportions* (marketplace shares,
/// pattern mix, evidence mix, lifetime distribution) follow the paper, while
/// the absolute counts are scaled down to run quickly. Use
/// [`WorkloadConfig::paper_scaled`] to pick a different scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed; the same seed reproduces the exact same chain.
    pub seed: u64,
    /// Chain genesis timestamp.
    pub start: Timestamp,
    /// Length of the simulated period in days.
    pub duration_days: u64,
    /// Number of ERC-165-compliant ERC-721 collections.
    pub collections: usize,
    /// Number of contracts that emit ERC-721-shaped logs but are not
    /// ERC-165 compliant (filtered out by the compliance step).
    pub non_compliant_collections: usize,
    /// Number of ERC-1155 contracts (noise for signature filtering).
    pub erc1155_collections: usize,
    /// Number of DEX-position NFTs minted by a UniswapV3-like contract
    /// (high-volume noise the paper explicitly sets aside).
    pub dex_position_nfts: usize,
    /// Number of ordinary trader accounts.
    pub legit_traders: usize,
    /// Number of ordinary marketplace sales.
    pub legit_sales: usize,
    /// Number of zero-volume transfer cliques (related accounts shuffling an
    /// NFT with no payment; removed by the zero-volume refinement step).
    pub zero_volume_shuffles: usize,
    /// Number of wash-trading activities to generate.
    pub wash_activities: usize,
    /// Fraction of wash accounts reused across activities (serial traders).
    pub serial_trader_fraction: f64,
    /// Gas price used throughout, in gwei.
    pub gas_price_gwei: u64,
}

impl WorkloadConfig {
    /// A small world suitable for unit/integration tests (a few hundred
    /// transactions, builds in well under a second).
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            start: Timestamp::from_secs(1_609_459_200), // 2021-01-01
            duration_days: 200,
            collections: 8,
            non_compliant_collections: 2,
            erc1155_collections: 1,
            dex_position_nfts: 5,
            legit_traders: 40,
            legit_sales: 120,
            zero_volume_shuffles: 6,
            wash_activities: 40,
            serial_trader_fraction: 0.27,
            gas_price_gwei: 40,
        }
    }

    /// A world whose absolute counts are `scale` times the paper's dataset
    /// (clamped to at least a handful of each ingredient). `scale = 1.0`
    /// would reproduce the full 12,413-activity study; the experiments use a
    /// few percent, which preserves every reported proportion.
    pub fn paper_scaled(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let activities = ((12_413.0 * scale).round() as usize).max(60);
        WorkloadConfig {
            seed,
            start: Timestamp::from_secs(1_609_459_200),
            duration_days: 380,
            collections: ((25_878.0 * scale).round() as usize).clamp(12, 400),
            non_compliant_collections: ((859.0 * scale).round() as usize).clamp(2, 40),
            erc1155_collections: 3,
            dex_position_nfts: ((200.0 * scale).round() as usize).clamp(5, 100),
            legit_traders: (activities * 4).clamp(100, 4_000),
            // The real chain has orders of magnitude more ordinary sales than
            // wash trades; 20× per activity keeps generation fast while still
            // making wash volume a small share of OpenSea's total (Table II's
            // shape). EXPERIMENTS.md discusses the remaining gap.
            legit_sales: activities * 20,
            zero_volume_shuffles: ((292_158.0 * scale * 0.002).round() as usize).clamp(5, 200),
            wash_activities: activities,
            serial_trader_fraction: 0.27,
            gas_price_gwei: 40,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::small(42)
    }
}

/// The standard world sizes the scale-sweep benchmarks run at: named points
/// on the [`WorkloadConfig::paper_scaled`] axis, so every bench and perf
/// artifact talks about the same three worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorldScale {
    /// ~1% of the paper's dataset — a few thousand transfers, builds in
    /// milliseconds; the quick-check size.
    Small,
    /// ~5% of the paper's dataset — the size of the standard experiments
    /// workload.
    Medium,
    /// ~12% of the paper's dataset — tens of thousands of transfers; the
    /// size where stage-level parallelism is worth measuring.
    Large,
}

impl WorldScale {
    /// All scales, ascending — the sweep order of the benchmarks.
    pub const ALL: [WorldScale; 3] = [WorldScale::Small, WorldScale::Medium, WorldScale::Large];

    /// The fraction of the paper's 12,413 activities this scale generates.
    pub fn fraction(self) -> f64 {
        match self {
            WorldScale::Small => 0.01,
            WorldScale::Medium => 0.05,
            WorldScale::Large => 0.12,
        }
    }

    /// The scale's name, as used in bench sections and summary tables.
    pub fn label(self) -> &'static str {
        match self {
            WorldScale::Small => "small",
            WorldScale::Medium => "medium",
            WorldScale::Large => "large",
        }
    }

    /// The workload configuration of this scale with the given seed.
    pub fn config(self, seed: u64) -> WorkloadConfig {
        WorkloadConfig::paper_scaled(seed, self.fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_modest() {
        let config = WorkloadConfig::small(1);
        assert!(config.wash_activities <= 100);
        assert!(config.legit_sales <= 500);
    }

    #[test]
    fn paper_scaled_preserves_activity_count() {
        let config = WorkloadConfig::paper_scaled(1, 0.05);
        assert!((config.wash_activities as f64 - 12_413.0 * 0.05).abs() < 2.0);
        assert!(config.collections >= 12);
    }

    #[test]
    #[should_panic]
    fn zero_scale_is_rejected() {
        let _ = WorkloadConfig::paper_scaled(1, 0.0);
    }

    #[test]
    fn world_scales_ascend_and_name_themselves() {
        assert!(WorldScale::ALL.windows(2).all(|w| w[0].fraction() < w[1].fraction()));
        for scale in WorldScale::ALL {
            assert_eq!(scale.config(9), WorkloadConfig::paper_scaled(9, scale.fraction()));
            assert!(!scale.label().is_empty());
        }
        assert_eq!(WorldScale::Medium.label(), "medium");
    }
}
