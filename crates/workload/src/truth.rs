//! Ground truth emitted by the world builder.
//!
//! Every wash-trading activity the builder executes is recorded here, so the
//! detection pipeline's output can be evaluated (precision/recall against
//! planted activities) and the profitability analysis can be cross-checked
//! against what actually happened on the synthetic chain.

use ethsim::{Address, Timestamp, TxHash, Wei};
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::scenario::{ExitEvidence, FundingEvidence, ScenarioPattern, Venue, WashGoal};

/// Ground-truth record of one executed wash-trading activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WashActivityTruth {
    /// Scenario id (stable across runs with the same seed).
    pub id: usize,
    /// The manipulated NFT.
    pub nft: NftId,
    /// The venue the wash trades went through.
    pub venue: Venue,
    /// The marketplace exchange contract, if any.
    pub marketplace_contract: Option<Address>,
    /// The colluding accounts, in walk-position order (position 0 first).
    pub accounts: Vec<Address>,
    /// The planted component shape.
    pub pattern: ScenarioPattern,
    /// The planted funding evidence.
    pub funder: FundingEvidence,
    /// The planted exit evidence.
    pub exit: ExitEvidence,
    /// Whether the activity was constructed to be zero-risk.
    pub zero_risk: bool,
    /// What the operators were after.
    pub goal: WashGoal,
    /// Timestamp of the first wash trade.
    pub first_trade: Timestamp,
    /// Timestamp of the last wash trade.
    pub last_trade: Timestamp,
    /// Total wash-traded volume (sum of wash-trade prices).
    pub wash_volume: Wei,
    /// Hashes of the wash-trade transactions.
    pub trade_tx_hashes: Vec<TxHash>,
    /// Price paid to acquire the NFT from an outsider (zero when minted).
    pub acquisition_price: Wei,
    /// Timestamp of the acquisition (mint or purchase).
    pub acquired_at: Timestamp,
    /// External resale price, if the NFT was later sold to an outsider.
    pub resale_price: Option<Wei>,
    /// Reward-claim transactions performed by the colluders, if any.
    pub claim_tx_hashes: Vec<TxHash>,
    /// Total reward tokens claimed (base units of the venue's reward token).
    pub claimed_tokens: u128,
    /// Gas fees paid by the colluding accounts across the whole operation.
    pub gas_fees: Wei,
    /// Marketplace fees paid across the whole operation.
    pub marketplace_fees: Wei,
    /// The collection contract the NFT belongs to.
    pub collection: Address,
    /// The day (relative to genesis) the collection contract was created.
    pub collection_created_day: u64,
}

impl WashActivityTruth {
    /// Lifetime in whole days between first and last wash trade.
    pub fn lifetime_days(&self) -> u64 {
        self.last_trade.days_since(self.first_trade)
    }

    /// Days between acquiring the NFT and starting the manipulation.
    pub fn days_from_acquisition_to_start(&self) -> u64 {
        self.first_trade.days_since(self.acquired_at)
    }

    /// Whether the operators claimed reward tokens.
    pub fn claimed_rewards(&self) -> bool {
        !self.claim_tx_hashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::PatternId;

    fn truth() -> WashActivityTruth {
        let t0 = Timestamp::from_secs(1_609_459_200);
        WashActivityTruth {
            id: 0,
            nft: NftId::new(Address::derived("c"), 1),
            venue: Venue::LooksRare,
            marketplace_contract: Some(Address::derived("lr")),
            accounts: vec![Address::derived("a"), Address::derived("b")],
            pattern: ScenarioPattern::Catalogued(PatternId(1)),
            funder: FundingEvidence::Internal,
            exit: ExitEvidence::Internal,
            zero_risk: true,
            goal: WashGoal::RewardExploit { claims: true },
            first_trade: t0.plus_days(10),
            last_trade: t0.plus_days(12),
            wash_volume: Wei::from_eth(100.0),
            trade_tx_hashes: vec![],
            acquisition_price: Wei::ZERO,
            acquired_at: t0.plus_days(9),
            resale_price: None,
            claim_tx_hashes: vec![TxHash::hash_of(b"claim")],
            claimed_tokens: 1,
            gas_fees: Wei::from_eth(0.01),
            marketplace_fees: Wei::from_eth(2.0),
            collection: Address::derived("c"),
            collection_created_day: 3,
        }
    }

    #[test]
    fn derived_quantities() {
        let truth = truth();
        assert_eq!(truth.lifetime_days(), 2);
        assert_eq!(truth.days_from_acquisition_to_start(), 1);
        assert!(truth.claimed_rewards());
    }
}
