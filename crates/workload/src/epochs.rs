//! Epoch slicing for streaming analysis: cut a generated world's block range
//! into ingestion epochs whose boundaries *straddle* planted scenarios.
//!
//! A streaming analyzer is only meaningfully exercised when an epoch boundary
//! falls in the middle of a wash-trading activity — a round-trip half
//! completed at the cut, funding executed before it and the exit sweep after.
//! [`EpochPlan::straddling`] therefore prefers boundaries taken from the
//! midpoints of planted activities' trade spans, falling back to uniform
//! splits only when the world offers too few multi-block activities.

use ethsim::BlockNumber;

use crate::world::World;

/// A partition of a chain's blocks into ingestion epochs.
///
/// `ends[i]` is the last block (inclusive) of epoch `i`; the final entry is
/// always the chain tip, so feeding every epoch through a block cursor covers
/// the whole chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    /// Last block of each epoch, strictly ascending; the final entry is the
    /// chain tip at planning time.
    pub ends: Vec<BlockNumber>,
}

impl EpochPlan {
    /// Slice `world` into (at most) `epochs` epochs whose internal boundaries
    /// straddle planted activities wherever possible.
    ///
    /// For every ground-truth activity with trades spread over more than two
    /// blocks, the midpoint of its trade span is a candidate cut: an epoch
    /// ending there has seen the activity's funding and some of its trades,
    /// but not its remaining trades or exit sweep. Candidates are spread
    /// evenly over the requested boundary count and topped up with uniform
    /// splits; degenerate inputs (one epoch, empty chain) collapse to a
    /// single epoch covering everything.
    pub fn straddling(world: &World, epochs: usize) -> EpochPlan {
        let tip = world.chain.current_block_number();
        if epochs <= 1 || tip.0 == 0 {
            return EpochPlan { ends: vec![tip] };
        }
        let wanted = epochs - 1;

        // Candidate cuts: midpoints of the planted activities' trade spans.
        let mut cuts: Vec<u64> = world
            .truth
            .iter()
            .filter_map(|truth| {
                let blocks: Vec<u64> = truth
                    .trade_tx_hashes
                    .iter()
                    .filter_map(|hash| world.chain.transaction(*hash))
                    .map(|tx| tx.block.0)
                    .collect();
                let first = *blocks.iter().min()?;
                let last = *blocks.iter().max()?;
                // A midpoint strictly inside (first, last) guarantees the
                // activity straddles the boundary.
                (last > first + 1).then_some(first + (last - first) / 2)
            })
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.retain(|block| *block < tip.0);

        let mut ends: Vec<u64> = if cuts.is_empty() {
            Vec::new()
        } else {
            // Spread the requested boundaries evenly over the candidates.
            (0..wanted.min(cuts.len()))
                .map(|i| cuts[i * cuts.len() / wanted.min(cuts.len())])
                .collect()
        };
        // Top up with uniform splits until we have `wanted` distinct
        // boundaries (or run out of blocks).
        let mut offset = 1u64;
        while ends.len() < wanted && offset <= wanted as u64 {
            let uniform = offset * tip.0 / epochs as u64;
            if uniform > 0 && uniform < tip.0 && !ends.contains(&uniform) {
                ends.push(uniform);
            }
            offset += 1;
        }
        ends.sort_unstable();
        ends.dedup();
        ends.truncate(wanted);
        ends.push(tip.0);
        EpochPlan { ends: ends.into_iter().map(BlockNumber).collect() }
    }

    /// Number of epochs in the plan.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the plan has no epochs (never produced by the constructors).
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Per-epoch block budgets for a cursor starting at block 0: feeding
    /// `budgets()[i]` as the i-th `max_blocks` walks the cursor exactly along
    /// this plan's boundaries.
    pub fn budgets(&self) -> Vec<u64> {
        let mut budgets = Vec::with_capacity(self.ends.len());
        let mut previous: Option<u64> = None;
        for end in &self.ends {
            let budget = match previous {
                None => end.0 + 1,
                Some(prev) => end.0 - prev,
            };
            budgets.push(budget);
            previous = Some(end.0);
        }
        budgets
    }

    /// Whether `truth`'s trades straddle the internal boundary `end`: at
    /// least one trade lands at or before it and at least one strictly after.
    pub fn straddles(
        world: &World,
        truth: &crate::truth::WashActivityTruth,
        end: BlockNumber,
    ) -> bool {
        let blocks: Vec<u64> = truth
            .trade_tx_hashes
            .iter()
            .filter_map(|hash| world.chain.transaction(*hash))
            .map(|tx| tx.block.0)
            .collect();
        match (blocks.iter().min(), blocks.iter().max()) {
            (Some(&first), Some(&last)) => first <= end.0 && last > end.0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    #[test]
    fn plan_covers_the_chain_with_increasing_boundaries() {
        let world = World::generate(WorkloadConfig::small(9)).unwrap();
        let plan = EpochPlan::straddling(&world, 5);
        assert!(plan.len() >= 2 && plan.len() <= 5);
        assert!(plan.ends.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert_eq!(*plan.ends.last().unwrap(), world.chain.current_block_number());
        let budgets = plan.budgets();
        assert_eq!(budgets.len(), plan.len());
        assert!(budgets.iter().all(|b| *b > 0));
        assert_eq!(
            budgets.iter().sum::<u64>(),
            world.chain.current_block_number().0 + 1,
            "budgets cover every block exactly once"
        );
    }

    #[test]
    fn internal_boundaries_straddle_planted_activities() {
        let world = World::generate(WorkloadConfig::small(13)).unwrap();
        let plan = EpochPlan::straddling(&world, 4);
        let internal = &plan.ends[..plan.ends.len() - 1];
        assert!(!internal.is_empty(), "multi-epoch plan has internal boundaries");
        let straddled = internal
            .iter()
            .filter(|end| world.truth.iter().any(|t| EpochPlan::straddles(&world, t, **end)))
            .count();
        assert!(
            straddled > 0,
            "at least one boundary must cut through a planted activity's trades"
        );
    }

    #[test]
    fn single_epoch_plan_is_the_whole_chain() {
        let world = World::generate(WorkloadConfig::small(3)).unwrap();
        let plan = EpochPlan::straddling(&world, 1);
        assert_eq!(plan.ends, vec![world.chain.current_block_number()]);
        assert_eq!(plan.budgets(), vec![world.chain.current_block_number().0 + 1]);
    }
}
