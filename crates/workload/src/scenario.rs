//! Wash-trading scenario specifications and the paper-calibrated sampler.
//!
//! A [`WashScenarioSpec`] fully describes one wash-trading activity before it
//! is executed on the chain: which marketplace (if any), which pattern shape,
//! how the colluding accounts are funded and where the proceeds exit, whether
//! the NFT is acquired from an external party, how long the activity lasts,
//! and what the operators are after (token rewards or a later resale).
//! [`ScenarioSampler`] draws specs from distributions calibrated to the
//! paper's reported numbers (Tables II–III, Figs. 2, 4, 6, 7).

use graphlib::PatternId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where a wash-trading activity takes place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Venue {
    /// Sales through the OpenSea contract.
    OpenSea,
    /// Sales through the LooksRare contract (reward token: LOOKS).
    LooksRare,
    /// Sales through the Rarible contract (reward token: RARI).
    Rarible,
    /// Sales through the SuperRare contract.
    SuperRare,
    /// Sales through the Decentraland marketplace contract.
    Decentraland,
    /// Sales through the Foundation contract.
    Foundation,
    /// Direct transfers outside any marketplace.
    OffMarket,
}

impl Venue {
    /// The marketplace name, or `None` for off-market activity.
    pub fn marketplace_name(&self) -> Option<&'static str> {
        match self {
            Venue::OpenSea => Some("OpenSea"),
            Venue::LooksRare => Some("LooksRare"),
            Venue::Rarible => Some("Rarible"),
            Venue::SuperRare => Some("SuperRare"),
            Venue::Decentraland => Some("Decentraland"),
            Venue::Foundation => Some("Foundation"),
            Venue::OffMarket => None,
        }
    }

    /// Whether this venue runs a volume-based token reward system.
    pub fn has_reward_system(&self) -> bool {
        matches!(self, Venue::LooksRare | Venue::Rarible)
    }
}

/// How the colluding accounts are funded before the activity (§IV-C ii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FundingEvidence {
    /// No funding transactions exist (accounts already held ETH).
    None,
    /// One colluding account funds the others before the first trade.
    Internal,
    /// A dedicated external account funds at least two colluders.
    External,
    /// An exchange-labelled account funds the colluders (the paper finds 737
    /// such cases; the common-funder heuristic must *not* count these).
    Exchange,
}

/// Where the proceeds go after the activity (§IV-C iii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitEvidence {
    /// No exit transfers.
    None,
    /// Funds are swept to one of the colluding accounts.
    Internal,
    /// Funds are swept to an external account.
    External,
}

/// What the wash traders are trying to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WashGoal {
    /// Exploit the marketplace's token reward system (§VI-A). `claims`
    /// mirrors the paper's observation that some operators never claim.
    RewardExploit {
        /// Whether the operators actually claim the reward tokens.
        claims: bool,
    },
    /// Inflate the price and resell to an outsider (§VI-B). `resale_price_eth`
    /// is the external sale price; `None` means the NFT is never resold.
    Resale {
        /// Final external sale price in ETH, if a sale happens.
        resale_price_eth: Option<f64>,
    },
    /// Pure volume inflation with no measured monetization.
    VolumeOnly,
}

/// The shape of the colluding component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioPattern {
    /// One of the 12 catalogued Fig. 7 patterns.
    Catalogued(PatternId),
    /// A larger simple cycle with the given number of accounts (the paper's
    /// uncatalogued ~6% tail).
    LargeCycle(usize),
}

impl ScenarioPattern {
    /// Short stable label for telemetry, e.g. `p3` for catalogued pattern 3
    /// or `cycle7` for an uncatalogued 7-account cycle.
    pub fn label(&self) -> String {
        match self {
            ScenarioPattern::Catalogued(id) => format!("p{}", id.0),
            ScenarioPattern::LargeCycle(n) => format!("cycle{n}"),
        }
    }

    /// Number of colluding accounts in the pattern.
    pub fn participants(&self) -> usize {
        match self {
            ScenarioPattern::Catalogued(id) => match id.0 {
                0 => 1,
                1 => 2,
                2..=4 => 3,
                5..=9 => 4,
                10 | 11 => 5,
                _ => 2,
            },
            ScenarioPattern::LargeCycle(n) => *n,
        }
    }

    /// The trade walk: the sequence of account positions the NFT visits, such
    /// that consecutive positions are the seller and buyer of one trade and
    /// every distinct edge of the pattern is traded at least once.
    pub fn walk(&self) -> Vec<usize> {
        match self {
            ScenarioPattern::Catalogued(id) => match id.0 {
                // Self-trade.
                0 => vec![0, 0],
                // Round trip.
                1 => vec![0, 1, 0],
                // 3-cycle.
                2 => vec![0, 1, 2, 0],
                // Round-trip chain on 3 accounts: edges 0⇄1, 1⇄2.
                3 => vec![0, 1, 2, 1, 0],
                // Bidirectional triangle: all six directed edges.
                4 => vec![0, 1, 2, 0, 2, 1, 0],
                // 4-cycle.
                5 => vec![0, 1, 2, 3, 0],
                // Round-trip chain on 4 accounts.
                6 => vec![0, 1, 2, 3, 2, 1, 0],
                // Round-trip star with hub 0 and spokes 1..3.
                7 => vec![0, 1, 0, 2, 0, 3, 0],
                // Bidirectional 4-cycle: forward then backward.
                8 => vec![0, 1, 2, 3, 0, 3, 2, 1, 0],
                // 4-cycle with the extra chord 2→0.
                9 => vec![0, 1, 2, 0, 1, 2, 3, 0],
                // 5-cycle.
                10 => vec![0, 1, 2, 3, 4, 0],
                // Round-trip star with hub 0 and spokes 1..4.
                11 => vec![0, 1, 0, 2, 0, 3, 0, 4, 0],
                _ => vec![0, 1, 0],
            },
            ScenarioPattern::LargeCycle(n) => {
                let mut walk: Vec<usize> = (0..*n).collect();
                walk.push(0);
                walk
            }
        }
    }

    /// The distinct directed edges of the pattern (derived from the walk).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let walk = self.walk();
        let mut edges: Vec<(usize, usize)> =
            walk.windows(2).map(|pair| (pair[0], pair[1])).collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// A fully specified wash-trading activity, ready to be executed by the
/// world builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WashScenarioSpec {
    /// Stable identifier within the generated world.
    pub id: usize,
    /// Where the trades happen.
    pub venue: Venue,
    /// Which collection (index into the world's compliant collections) the
    /// target NFT belongs to.
    pub collection_index: usize,
    /// The component shape.
    pub pattern: ScenarioPattern,
    /// Seeds of the colluding accounts (stable names enable serial traders).
    pub account_seeds: Vec<String>,
    /// Funding evidence to plant.
    pub funder: FundingEvidence,
    /// Exit evidence to plant.
    pub exit: ExitEvidence,
    /// Whether the NFT is bought from an external holder right before the
    /// activity (true for most activities per §V-B; breaks the zero-risk
    /// evidence) rather than minted straight to a colluder.
    pub acquire_externally: bool,
    /// Day offset (from chain genesis) of the first wash trade.
    pub start_day: u64,
    /// Days between the first and last wash trade.
    pub lifetime_days: u64,
    /// Number of wash trades; at least the length of the pattern walk.
    pub trades: usize,
    /// Price of the first wash trade, in ETH.
    pub base_price_eth: f64,
    /// Whether successive trades escalate the price (typical for resale
    /// manipulation) or keep it flat (typical for reward farming).
    pub escalate_prices: bool,
    /// What the operators are after.
    pub goal: WashGoal,
}

impl WashScenarioSpec {
    /// Number of colluding accounts.
    pub fn participants(&self) -> usize {
        self.pattern.participants()
    }

    /// Whether this activity should carry zero-risk evidence: the component's
    /// ETH position nets to zero because the NFT was never bought from or
    /// sold to an outsider for value.
    pub fn is_zero_risk(&self) -> bool {
        !self.acquire_externally
            && !matches!(self.goal, WashGoal::Resale { resale_price_eth: Some(_) })
    }
}

/// Calibration constants lifted from the paper.
pub mod calibration {
    /// Venue mix of wash-trading activities, by number of affected NFTs
    /// (Table II, with the remainder attributed to off-market transfers).
    pub const VENUE_MIX: [(super::Venue, f64); 7] = [
        (super::Venue::OpenSea, 0.7578),
        (super::Venue::LooksRare, 0.0430),
        (super::Venue::Rarible, 0.0152),
        (super::Venue::SuperRare, 0.0024),
        (super::Venue::Decentraland, 0.0016),
        (super::Venue::Foundation, 0.0),
        (super::Venue::OffMarket, 0.18),
    ];

    /// Pattern occurrence mix (Fig. 7) plus the uncatalogued tail.
    pub const PATTERN_MIX: [(usize, f64); 13] = [
        (0, 0.0759), // self-trade
        (1, 0.5986), // round trip
        (2, 0.1283), // 3-cycle
        (3, 0.0633),
        (4, 0.0014),
        (5, 0.0363),
        (6, 0.0118),
        (7, 0.0108),
        (8, 0.0007),
        (9, 0.0003),
        (10, 0.0093),
        (11, 0.0018),
        (usize::MAX, 0.0615), // larger, uncatalogued components
    ];

    /// Evidence-combination mix over non-self-trade activities (Fig. 2 Venn).
    /// Order: (zero-risk, funder, exit) → weight.
    pub const EVIDENCE_MIX: [((bool, bool, bool), f64); 7] = [
        ((true, false, false), 0.02235), // 256 / 11,454
        ((false, true, false), 0.04680), // 536
        ((false, false, true), 0.24245), // 2,777
        ((true, true, false), 0.02209),  // 253
        ((true, false, true), 0.05081),  // 582
        ((false, true, true), 0.43827),  // 5,020
        ((true, true, true), 0.17723),   // 2,030
    ];

    /// Fraction of common funders that are external (1,579 / 7,839).
    pub const EXTERNAL_FUNDER_FRACTION: f64 = 0.2014;
    /// Fraction of common exits that are external (3,025 / 10,409).
    pub const EXTERNAL_EXIT_FRACTION: f64 = 0.2906;
    /// Fraction of exit-only activities funded through an exchange (737 / 2,777).
    pub const EXCHANGE_FUNDED_FRACTION: f64 = 0.2654;
    /// Lifetime distribution (Fig. 4): (max extra days, cumulative fraction).
    pub const LIFETIME_BUCKETS: [(u64, f64); 4] = [
        (0, 0.3349), // same day
        (9, 0.5917), // < 10 days
        (60, 0.85),
        (300, 1.0),
    ];
    /// Fraction of reward-venue activities whose operators claim the tokens
    /// (457/534 on LooksRare, 113/189 on Rarible ⇒ pooled ≈ 0.79).
    pub const REWARD_CLAIM_FRACTION: f64 = 0.79;
    /// Fraction of resale-venue activities followed by an external sale
    /// (4,126 / 11,690).
    pub const RESALE_FRACTION: f64 = 0.353;
    /// Fraction of resold NFTs sold above the total cost basis (≈ 50.4%).
    pub const RESALE_PROFIT_FRACTION: f64 = 0.504;
}

/// Draws paper-calibrated scenario specs.
#[derive(Debug)]
pub struct ScenarioSampler {
    /// Number of compliant collections available.
    pub collections: usize,
    /// Total number of wash-trader account seeds to draw from; a fraction of
    /// them is reused across activities (serial traders).
    pub trader_pool: usize,
    /// Fraction of the pool designated as serial traders.
    pub serial_fraction: f64,
    /// Simulation length in days.
    pub duration_days: u64,
}

fn weighted_choice<'a, T, R: Rng>(rng: &mut R, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| *w).sum();
    let mut draw = rng.gen_range(0.0..total);
    for (item, weight) in items {
        if draw < *weight {
            return item;
        }
        draw -= weight;
    }
    &items[items.len() - 1].0
}

impl ScenarioSampler {
    /// Sample one scenario spec.
    pub fn sample<R: Rng>(&self, rng: &mut R, id: usize) -> WashScenarioSpec {
        let venue = *weighted_choice(rng, &calibration::VENUE_MIX);
        let pattern_key = *weighted_choice(rng, &calibration::PATTERN_MIX);
        let pattern = if pattern_key == usize::MAX {
            ScenarioPattern::LargeCycle(rng.gen_range(6..=9))
        } else {
            ScenarioPattern::Catalogued(PatternId(pattern_key))
        };

        // Evidence channels. Self-trades are verified de facto and do not need
        // planted evidence; everything else follows the Venn mix.
        let (zero_risk, wants_funder, wants_exit) =
            if matches!(pattern, ScenarioPattern::Catalogued(PatternId(0))) {
                (rng.gen_bool(0.5), false, false)
            } else {
                *weighted_choice(rng, &calibration::EVIDENCE_MIX)
            };
        let funder = if wants_funder {
            if rng.gen_bool(calibration::EXTERNAL_FUNDER_FRACTION) {
                FundingEvidence::External
            } else {
                FundingEvidence::Internal
            }
        } else if wants_exit && !zero_risk && rng.gen_bool(calibration::EXCHANGE_FUNDED_FRACTION) {
            FundingEvidence::Exchange
        } else {
            FundingEvidence::None
        };
        let exit = if wants_exit {
            if rng.gen_bool(calibration::EXTERNAL_EXIT_FRACTION) {
                ExitEvidence::External
            } else {
                ExitEvidence::Internal
            }
        } else {
            ExitEvidence::None
        };

        // Goal and volume.
        let goal = if venue.has_reward_system() {
            WashGoal::RewardExploit { claims: rng.gen_bool(calibration::REWARD_CLAIM_FRACTION) }
        } else if matches!(venue, Venue::OffMarket) {
            WashGoal::VolumeOnly
        } else if rng.gen_bool(calibration::RESALE_FRACTION) {
            WashGoal::Resale {
                resale_price_eth: Some(0.0), // placeholder, fixed below
            }
        } else {
            WashGoal::Resale { resale_price_eth: None }
        };

        let base_price_eth = match venue {
            Venue::LooksRare => {
                // Log-spread around the paper's mean per-activity volume.
                let magnitude = rng.gen_range(1.0f64..3.6);
                10f64.powf(magnitude) / 4.0
            }
            Venue::Rarible => rng.gen_range(0.2..4.0),
            Venue::OffMarket => rng.gen_range(0.05..1.0),
            _ => rng.gen_range(0.2..3.0),
        };

        // Resale outcome: pick the external sale price so that roughly half of
        // resold activities end above the cost basis once fees are counted.
        // The wash traders acquire the NFT at about 30% of the wash-trade
        // price (see the world builder), so profitable resales land well above
        // that and unprofitable ones below it.
        let goal = match goal {
            WashGoal::Resale { resale_price_eth: Some(_) } => {
                let profitable = rng.gen_bool(calibration::RESALE_PROFIT_FRACTION);
                let multiplier =
                    if profitable { rng.gen_range(1.6..6.0) } else { rng.gen_range(0.10..0.28) };
                WashGoal::Resale { resale_price_eth: Some(base_price_eth * multiplier) }
            }
            other => other,
        };

        // Zero-risk requires the NFT to enter the colluding set for free.
        let acquire_externally = if zero_risk {
            false
        } else {
            // §V-B: most wash traders buy the NFT shortly before the activity.
            rng.gen_bool(0.75)
        };

        // Lifetime.
        let lifetime_days = {
            let draw: f64 = rng.gen_range(0.0..1.0);
            let mut previous_cap = 0u64;
            let mut chosen = 0u64;
            for (cap, cumulative) in calibration::LIFETIME_BUCKETS {
                if draw <= cumulative {
                    chosen = if cap == 0 { 0 } else { rng.gen_range(previous_cap + 1..=cap) };
                    break;
                }
                previous_cap = cap;
            }
            chosen
        };
        let latest_start = self.duration_days.saturating_sub(lifetime_days + 30).max(10);
        let start_day = rng.gen_range(5..=latest_start.max(6));

        // Colluding accounts: draw from the trader pool, with serial traders
        // concentrated in a small prefix of the pool.
        let participants = pattern.participants();
        let serial_pool = ((self.trader_pool as f64) * self.serial_fraction).max(2.0) as usize;
        let account_seeds: Vec<String> = (0..participants)
            .map(|position| {
                let serial = rng.gen_bool(0.6);
                let index = if serial {
                    rng.gen_range(0..serial_pool)
                } else {
                    rng.gen_range(serial_pool..self.trader_pool.max(serial_pool + 1))
                };
                // The position suffix keeps the accounts of one activity
                // distinct even when indices collide.
                format!("wash-trader-{index}-{position}")
            })
            .collect();

        let walk_len = pattern.walk().len() - 1;
        let trades = walk_len + if rng.gen_bool(0.4) { walk_len } else { 0 };

        WashScenarioSpec {
            id,
            venue,
            collection_index: rng.gen_range(0..self.collections.max(1)),
            pattern,
            account_seeds,
            funder,
            exit,
            acquire_externally,
            start_day,
            lifetime_days,
            trades,
            base_price_eth,
            escalate_prices: matches!(goal, WashGoal::Resale { resale_price_eth: Some(_) }),
            goal,
        }
    }

    /// Sample `count` scenario specs.
    pub fn sample_many<R: Rng>(&self, rng: &mut R, count: usize) -> Vec<WashScenarioSpec> {
        (0..count).map(|id| self.sample(rng, id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::PatternCatalogue;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn walks_cover_their_pattern_edges_and_are_connected() {
        let catalogue = PatternCatalogue::paper();
        for spec in catalogue.specs() {
            let pattern = ScenarioPattern::Catalogued(spec.id);
            let walk = pattern.walk();
            assert!(walk.len() >= 2, "pattern {} walk too short", spec.id);
            // Every consecutive pair is an edge of the catalogued shape.
            let mut catalogue_edges = spec.edges.clone();
            catalogue_edges.sort_unstable();
            for pair in walk.windows(2) {
                assert!(
                    catalogue_edges.binary_search(&(pair[0], pair[1])).is_ok(),
                    "pattern {}: walk step {:?} is not a catalogued edge",
                    spec.id,
                    pair
                );
            }
            // Every catalogued edge is walked at least once, so the traded
            // shape classifies back to the same pattern id.
            assert_eq!(pattern.edges(), catalogue_edges, "pattern {}", spec.id);
            assert_eq!(
                catalogue.classify(spec.participants, &pattern.edges()),
                Some(spec.id),
                "walk of pattern {} must classify back to it",
                spec.id
            );
            assert_eq!(pattern.participants(), spec.participants);
        }
    }

    #[test]
    fn large_cycle_walk_is_a_cycle() {
        let pattern = ScenarioPattern::LargeCycle(7);
        assert_eq!(pattern.participants(), 7);
        let walk = pattern.walk();
        assert_eq!(walk.len(), 8);
        assert_eq!(walk[0], *walk.last().unwrap());
    }

    #[test]
    fn sampler_respects_broad_calibration() {
        let sampler = ScenarioSampler {
            collections: 10,
            trader_pool: 200,
            serial_fraction: 0.27,
            duration_days: 365,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let specs = sampler.sample_many(&mut rng, 2_000);

        let round_trips =
            specs.iter().filter(|s| s.pattern == ScenarioPattern::Catalogued(PatternId(1))).count()
                as f64
                / specs.len() as f64;
        assert!((round_trips - 0.5986).abs() < 0.05, "round-trip share {round_trips}");

        let opensea =
            specs.iter().filter(|s| s.venue == Venue::OpenSea).count() as f64 / specs.len() as f64;
        assert!((opensea - 0.7578).abs() < 0.05, "OpenSea share {opensea}");

        let same_day =
            specs.iter().filter(|s| s.lifetime_days == 0).count() as f64 / specs.len() as f64;
        assert!((same_day - 0.3349).abs() < 0.06, "same-day share {same_day}");

        let foundation = specs.iter().filter(|s| s.venue == Venue::Foundation).count();
        assert_eq!(foundation, 0, "the paper finds no wash trading on Foundation");

        // Reward venues always get reward goals; others never do.
        for spec in &specs {
            match spec.goal {
                WashGoal::RewardExploit { .. } => assert!(spec.venue.has_reward_system()),
                WashGoal::Resale { .. } => {
                    assert!(!spec.venue.has_reward_system() && spec.venue != Venue::OffMarket)
                }
                WashGoal::VolumeOnly => {}
            }
            assert!(spec.trades + 1 >= spec.pattern.walk().len());
            assert_eq!(spec.account_seeds.len(), spec.participants());
            assert!(spec.base_price_eth > 0.0);
        }

        // Zero-risk flag is consistent with its definition.
        for spec in &specs {
            if spec.is_zero_risk() {
                assert!(!spec.acquire_externally);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = ScenarioSampler {
            collections: 5,
            trader_pool: 50,
            serial_fraction: 0.27,
            duration_days: 200,
        };
        let a = sampler.sample_many(&mut ChaCha8Rng::seed_from_u64(3), 50);
        let b = sampler.sample_many(&mut ChaCha8Rng::seed_from_u64(3), 50);
        let c = sampler.sample_many(&mut ChaCha8Rng::seed_from_u64(4), 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
