//! Immutable, `Arc`-shared segment storage — the serving-side twin of the
//! core pipeline's `ColumnSegment`/splice machinery.
//!
//! A [`SegmentedVec`] is a logically contiguous sequence stored as a list of
//! immutable segments, each behind its own `Arc`. Two snapshots that agree
//! on a region of the sequence share the segments covering it by reference
//! count: a delta build pushes the previous epoch's `Arc`s for unchanged
//! regions (a pointer copy) and freshly built vectors only for the dirty
//! ones. Equality, indexing and iteration are all defined on the *logical*
//! sequence — how the data is cut into segments is an implementation detail
//! two equal values are allowed to disagree on.

use std::sync::Arc;

/// A logically contiguous, immutable sequence stored as `Arc`-shared
/// segments. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct SegmentedVec<T> {
    /// Non-empty segments, in logical order.
    segments: Vec<Arc<Vec<T>>>,
    /// Logical start offset of each segment, plus the total length — always
    /// `segments.len() + 1` entries, starting at 0.
    offsets: Vec<u32>,
}

impl<T> SegmentedVec<T> {
    /// The empty sequence.
    pub fn new() -> Self {
        SegmentedVec { segments: Vec::new(), offsets: vec![0] }
    }

    /// A sequence holding `values` as one segment.
    pub fn from_vec(values: Vec<T>) -> Self {
        let mut out = SegmentedVec::new();
        out.push_segment(Arc::new(values));
        out
    }

    /// Append one shared segment (empty segments are skipped, so sharing an
    /// empty region costs nothing and never fragments the store).
    pub fn push_segment(&mut self, segment: Arc<Vec<T>>) {
        if segment.is_empty() {
            return;
        }
        let next = self.len() as u32 + segment.len() as u32;
        self.segments.push(segment);
        self.offsets.push(next);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty") as usize
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments backing the sequence.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The backing segments, in logical order.
    pub fn segments(&self) -> &[Arc<Vec<T>>] {
        &self.segments
    }

    /// Logical start offset of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= segment_count()`.
    pub fn segment_offset(&self, index: usize) -> usize {
        assert!(index < self.segment_count(), "segment {index} out of bounds");
        self.offsets[index] as usize
    }

    /// The element at logical position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`, like slice indexing.
    pub fn get(&self, index: usize) -> &T {
        let position = self
            .offsets
            .partition_point(|&offset| offset as usize <= index)
            .checked_sub(1)
            .expect("offsets start at 0");
        let segment =
            self.segments.get(position).unwrap_or_else(|| panic!("index {index} out of bounds"));
        &segment[index - self.offsets[position] as usize]
    }

    /// Iterate the logical sequence in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.segments.iter().flat_map(|segment| segment.iter())
    }

    /// How many elements of `self` share backing storage with `previous`
    /// (counted over segments reused by `Arc` identity) — the numerator of
    /// the chunk-reuse ratio the delta-build metrics report.
    pub fn shared_len_with(&self, previous: &SegmentedVec<T>) -> usize {
        self.segments
            .iter()
            .filter(|segment| previous.segments.iter().any(|other| Arc::ptr_eq(segment, other)))
            .map(|segment| segment.len())
            .sum()
    }
}

/// Logical-content equality: segmentation is invisible.
impl<T: PartialEq> PartialEq for SegmentedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T> FromIterator<T> for SegmentedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        SegmentedVec::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segmented(parts: &[&[u32]]) -> SegmentedVec<u32> {
        let mut out = SegmentedVec::new();
        for part in parts {
            out.push_segment(Arc::new(part.to_vec()));
        }
        out
    }

    #[test]
    fn indexing_and_iteration_cross_segment_boundaries() {
        let vec = segmented(&[&[1, 2], &[], &[3], &[4, 5, 6]]);
        assert_eq!(vec.len(), 6);
        assert_eq!(vec.segment_count(), 3, "empty segments are skipped");
        assert_eq!((0..6).map(|i| *vec.get(i)).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(vec.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6]);
        assert!(segmented(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        segmented(&[&[1, 2]]).get(2);
    }

    #[test]
    fn equality_ignores_segmentation() {
        assert_eq!(segmented(&[&[1, 2, 3]]), segmented(&[&[1], &[2, 3]]));
        assert_ne!(segmented(&[&[1, 2]]), segmented(&[&[1], &[3]]));
        assert_ne!(segmented(&[&[1]]), segmented(&[&[1], &[1]]));
        assert_eq!(vec![7, 8].into_iter().collect::<SegmentedVec<_>>(), segmented(&[&[7, 8]]));
    }

    #[test]
    fn shared_len_counts_reused_segments() {
        let shared = Arc::new(vec![1, 2, 3]);
        let mut a = SegmentedVec::new();
        a.push_segment(Arc::clone(&shared));
        a.push_segment(Arc::new(vec![4]));
        let mut b = SegmentedVec::new();
        b.push_segment(Arc::clone(&shared));
        b.push_segment(Arc::new(vec![4]));
        assert_eq!(b.shared_len_with(&a), 3, "equal contents don't count, shared storage does");
        assert_eq!(a.shared_len_with(&SegmentedVec::new()), 0);
    }
}
