//! A sharded, epoch-invalidated LRU response cache.
//!
//! Entries are keyed by `(epoch, query)`: a cached response is served only
//! while the snapshot that produced it is still the published one, so
//! publishing a new epoch invalidates the entire cache *logically* at zero
//! cost — stale entries simply stop matching and are evicted lazily as
//! their slots are reused. Sharding (by query hash) keeps lock contention
//! off the hot read path; within a shard, eviction is least-recently-used
//! via a per-shard clock.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::query::{Query, Response};

/// Hit/miss/eviction counters of a cache (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (including epoch-stale entries).
    pub misses: u64,
    /// Entries removed to make room: LRU victims plus epoch-stale entries
    /// purged when a newer epoch's insert lands in their shard.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Sum two stat sets (used when aggregating across caches).
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// One cached response.
struct CacheEntry {
    epoch: u64,
    query: Query,
    response: Response,
    last_used: u64,
}

/// One shard: a small open vector scanned linearly (capacities are small
/// enough that a scan beats a map), with an LRU clock.
#[derive(Default)]
struct Shard {
    entries: Vec<CacheEntry>,
    clock: u64,
}

/// The sharded LRU. `capacity_per_shard == 0` disables caching entirely
/// (every lookup is a miss), which the benchmarks use to measure the
/// uncached baseline.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ShardedLru {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShardedLru {
    /// A cache with `shards` shards of `capacity_per_shard` entries each.
    /// At least one shard is always allocated.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, query: &Query) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        query.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// The cached response for `query` at `epoch`, if present and fresh.
    pub fn get(&self, epoch: u64, query: &Query) -> Option<Response> {
        let mut shard = self.shard_of(query).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) =
            shard.entries.iter_mut().find(|entry| entry.epoch == epoch && entry.query == *query)
        {
            entry.last_used = clock;
            let response = entry.response.clone();
            drop(shard);
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve.cache.hits");
            return Some(response);
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter!("serve.cache.misses");
        None
    }

    /// Insert a computed response. Entries from *older* epochs are purged
    /// first (publication invalidation); newer entries are kept, so a
    /// laggard reader still finishing queries against a superseded snapshot
    /// cannot evict the fresh epoch's working set. Historical queries
    /// (`AsOf`, epoch diffs) are exempt from the purge — their answers
    /// address a fixed epoch and can never go stale, so they survive
    /// publishes and are reclaimed by LRU pressure only. If the shard is
    /// still full, the least-recently-used entry is evicted.
    pub fn insert(&self, epoch: u64, query: Query, response: Response) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = self.shard_of(&query).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        let before = shard.entries.len();
        shard.entries.retain(|entry| entry.epoch >= epoch || entry.query.is_historical());
        let mut evicted = (before - shard.entries.len()) as u64;
        if let Some(entry) =
            shard.entries.iter_mut().find(|entry| entry.epoch == epoch && entry.query == query)
        {
            entry.response = response;
            entry.last_used = clock;
            drop(shard);
            self.note_evictions(evicted);
            return;
        }
        if shard.entries.len() >= self.capacity_per_shard {
            if let Some(lru) = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(index, _)| index)
            {
                shard.entries.swap_remove(lru);
                evicted += 1;
            }
        }
        shard.entries.push(CacheEntry { epoch, query, response, last_used: clock });
        drop(shard);
        self.note_evictions(evicted);
    }

    fn note_evictions(&self, evicted: u64) {
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            obs::counter!("serve.cache.evictions", evicted);
        }
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_query(n: usize) -> Query {
        Query::TopMovers(n)
    }

    fn response(n: usize) -> Response {
        Response::TopMovers(Vec::with_capacity(n))
    }

    #[test]
    fn hit_after_insert_and_miss_after_epoch_bump() {
        let cache = ShardedLru::new(4, 8);
        assert_eq!(cache.get(1, &stats_query(5)), None);
        cache.insert(1, stats_query(5), response(5));
        assert_eq!(cache.get(1, &stats_query(5)), Some(response(5)));
        // A new epoch invalidates the entry without any explicit flush.
        assert_eq!(cache.get(2, &stats_query(5)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // One shard, capacity two: touch entry A, insert C → B (untouched)
        // must be the one evicted.
        let cache = ShardedLru::new(1, 2);
        cache.insert(7, stats_query(1), response(1));
        cache.insert(7, stats_query(2), response(2));
        assert!(cache.get(7, &stats_query(1)).is_some());
        cache.insert(7, stats_query(3), response(3));
        assert!(cache.get(7, &stats_query(1)).is_some(), "recently used survives");
        assert!(cache.get(7, &stats_query(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(7, &stats_query(3)).is_some());
    }

    #[test]
    fn eviction_counter_covers_lru_and_stale_purges() {
        let cache = ShardedLru::new(1, 2);
        cache.insert(1, stats_query(1), response(1));
        cache.insert(1, stats_query(2), response(2));
        assert_eq!(cache.stats().evictions, 0);
        // Capacity reached: the third same-epoch insert claims an LRU victim.
        cache.insert(1, stats_query(3), response(3));
        assert_eq!(cache.stats().evictions, 1);
        // A newer epoch's insert purges both remaining epoch-1 entries.
        cache.insert(2, stats_query(4), response(4));
        assert_eq!(cache.stats().evictions, 3);
        let merged = cache.stats().merge(&CacheStats { hits: 1, misses: 2, evictions: 4 });
        assert_eq!(merged, CacheStats { hits: 1, misses: 2, evictions: 7 });
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ShardedLru::new(2, 0);
        cache.insert(1, stats_query(1), response(1));
        assert_eq!(cache.get(1, &stats_query(1)), None);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn stale_epochs_are_purged_on_insert() {
        let cache = ShardedLru::new(1, 4);
        cache.insert(1, stats_query(1), response(1));
        cache.insert(1, stats_query(2), response(2));
        // Publishing epoch 2: the first insert purges every epoch-1 entry.
        cache.insert(2, stats_query(3), response(3));
        assert!(cache.get(1, &stats_query(1)).is_none());
        assert!(cache.get(1, &stats_query(2)).is_none());
        assert!(cache.get(2, &stats_query(3)).is_some());
    }

    #[test]
    fn historical_entries_survive_epoch_invalidation() {
        // An `AsOf` answer addresses a fixed epoch: publishing newer epochs
        // must not purge it (it cannot go stale), only LRU pressure may.
        let cache = ShardedLru::new(1, 4);
        let historical = Query::AsOf(3, Box::new(Query::TopMovers(1)));
        cache.insert(3, historical.clone(), response(1));
        cache.insert(9, stats_query(2), response(2));
        assert!(cache.get(3, &historical).is_some(), "historical entry survives a newer epoch");
        assert!(cache.get(9, &stats_query(2)).is_some());
    }

    #[test]
    fn laggard_inserts_do_not_evict_the_fresh_epoch() {
        // A reader still working off a superseded snapshot inserts with the
        // old epoch; the fresh epoch's entries must survive, and the laggard
        // can even read its own entry back while it holds the old snapshot.
        let cache = ShardedLru::new(1, 4);
        cache.insert(2, stats_query(1), response(1));
        cache.insert(1, stats_query(2), response(2));
        assert!(cache.get(2, &stats_query(1)).is_some(), "fresh entry survives laggard insert");
        assert!(cache.get(1, &stats_query(2)).is_some(), "laggard entry is readable at its epoch");
        // The next fresh-epoch insert purges the laggard's leftovers.
        cache.insert(2, stats_query(3), response(3));
        assert!(cache.get(1, &stats_query(2)).is_none());
        assert!(cache.get(2, &stats_query(1)).is_some());
    }
}
