//! The epoch-versioned, immutable [`Snapshot`]: every index a read-side
//! query needs, frozen at one published epoch.
//!
//! A snapshot is built once per epoch — from the streaming analyzer's dense
//! layers ([`Snapshot::from_dense`]), **delta-encoded against the previous
//! epoch** ([`Snapshot::delta_from_dense`]), or from a finished batch report
//! ([`Snapshot::from_report`]) — and then only ever read. Addresses and NFT
//! identities are resolved **once, at build time** (the serving boundary's
//! twin of the pipeline's intern-once/resolve-once rule); queries are index
//! lookups, never scans over analysis state:
//!
//! * account → suspect activities as a [`Postings`] list over the sorted
//!   involved-account table,
//! * a suspect log sorted by confirmation block, so block-windowed queries
//!   ([`Snapshot::suspects_since`], [`Snapshot::suspects_between`]) are a
//!   binary search plus a suffix walk,
//! * the full wash-volume ranking, so [`Snapshot::top_movers`] is a prefix
//!   copy,
//! * per-collection and per-marketplace rollups, pre-aggregated and
//!   pre-sorted.
//!
//! # Delta encoding
//!
//! The resolved activity store is a [`SegmentedVec`] cut at NFT boundaries
//! (the confirmed order groups each NFT's activities contiguously), and the
//! block-sorted suspect log is a [`SegmentedVec`] too. A delta build walks
//! the new confirmed set against the previous snapshot: every NFT whose
//! dense activities are unchanged reuses the previous epoch's resolved
//! segment by `Arc` clone — no oracle pricing, no pattern classification,
//! no address resolution — and only the changed NFTs are re-resolved. The
//! cheap integer/float index assembly then runs over the (mostly shared)
//! record sequence through the exact same code path as a full build, so a
//! delta-built snapshot is **bit-identical** to the full rebuild at the same
//! epoch (the AsOf-parity gate pins this). When nothing changed, every index
//! is reused wholesale and publishing costs O(1).
//!
//! The struct is a cheap handle: all data lives behind one `Arc`, so cloning
//! a snapshot is a reference-count bump and a clone can cross threads freely
//! (`Snapshot: Send + Sync`). Two snapshots compare equal iff their contents
//! do — the equality the batch/stream parity test pins. How a snapshot was
//! built (full vs delta, and its [`SnapshotBuildStats`]) never participates
//! in equality.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use ethsim::{Address, BlockNumber, Timestamp, Wei};
use graphlib::{PatternCatalogue, PatternId};
use ids::{NftKey, Postings};
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};
use tokens::NftId;
use washtrade::characterize::{component_shape, MarketplaceWashRow};
use washtrade::dataset::{Dataset, MarketplaceVolume};
use washtrade::detect::{DenseActivity, MethodSet};
use washtrade::pipeline::AnalysisReport;

use crate::chunks::SegmentedVec;

/// Version and coverage of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SnapshotMeta {
    /// Epoch number: how many ingestion epochs produced this state (0 for
    /// the empty snapshot a fresh publisher holds).
    pub epoch: u64,
    /// First block *not* covered by this snapshot.
    pub watermark: BlockNumber,
}

/// One confirmed wash-trading activity, fully resolved for serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// The manipulated NFT.
    pub nft: NftId,
    /// The colluding accounts, sorted by address.
    pub accounts: Vec<Address>,
    /// Total traded volume of the internal sales.
    pub volume: Wei,
    /// The same volume in USD at trade time.
    pub volume_usd: f64,
    /// Name of the marketplace carrying most of the volume; `None` for
    /// off-market activity.
    pub marketplace: Option<String>,
    /// Fig. 7 pattern id of the component's shape, if catalogued.
    pub pattern: Option<usize>,
    /// Timestamp of the first internal sale.
    pub first_trade: Timestamp,
    /// Timestamp of the last internal sale.
    pub last_trade: Timestamp,
    /// The detection methods that confirmed the activity.
    pub methods: MethodSet,
}

/// The served summary of one suspect (confirmed) NFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NftSummary {
    /// The NFT.
    pub nft: NftId,
    /// Confirmed activities on the NFT.
    pub activities: usize,
    /// Total confirmed wash volume on the NFT.
    pub volume: Wei,
    /// Last block of the epoch whose ingestion (most recently) confirmed the
    /// NFT; for batch-built snapshots, the last covered block.
    pub confirmed_at: BlockNumber,
}

/// Wash-trading rollup for one collection contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectionRollup {
    /// The collection (ERC-721 contract).
    pub collection: Address,
    /// Distinct suspect NFTs in the collection.
    pub suspect_nfts: usize,
    /// Confirmed activities on the collection.
    pub activities: usize,
    /// Wash volume in ETH.
    pub volume_eth: f64,
    /// Wash volume in USD at trade time.
    pub volume_usd: f64,
    /// The most frequent Fig. 7 pattern ids, as `(pattern, occurrences)`,
    /// most frequent first (ties broken by lowest id). Zero-count slots are
    /// padding — a present pattern always has at least one occurrence. The
    /// inline array (rather than a `Vec`) keeps rollup rows allocation-free
    /// to copy, which the delta build's table merge leans on.
    pub top_patterns: [(usize, usize); 3],
}

/// The answer to an account-dossier query: one account's wash-trading
/// involvement, derived from the account-postings index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountDossier {
    /// The account.
    pub account: Address,
    /// Confirmed activities the account participates in.
    pub activities: usize,
    /// Distinct NFTs those activities manipulate, ascending.
    pub nfts: Vec<NftId>,
    /// Total volume of those activities.
    pub wash_volume: Wei,
    /// Distinct co-participants across those activities, ascending.
    pub collaborators: Vec<Address>,
}

/// Aggregate counters of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SnapshotStats {
    /// Epoch number of the snapshot.
    pub epoch: u64,
    /// First block not covered.
    pub watermark: BlockNumber,
    /// Distinct NFTs with at least one compliant transfer.
    pub dataset_nfts: usize,
    /// Compliant transfers ingested.
    pub dataset_transfers: usize,
    /// Raw ERC-721-shaped logs scanned.
    pub raw_transfer_events: usize,
    /// Contracts passing the compliance probe.
    pub compliant_contracts: usize,
    /// Contracts failing the probe.
    pub non_compliant_contracts: usize,
    /// Confirmed wash-trading activities.
    pub confirmed_activities: usize,
    /// Distinct NFTs with at least one confirmed activity.
    pub suspect_nfts: usize,
    /// Distinct accounts involved in confirmed activities.
    pub involved_accounts: usize,
    /// Total confirmed wash volume.
    pub wash_volume: Wei,
    /// The same volume in ETH.
    pub wash_volume_eth: f64,
    /// The same volume in USD at trade time.
    pub wash_volume_usd: f64,
}

/// How a snapshot was built: delta vs full, wall time, and how much of the
/// resolved activity store was reused from the previous epoch. Never part of
/// snapshot equality — two bit-identical snapshots may have arrived by
/// different routes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SnapshotBuildStats {
    /// Whether the delta path built this snapshot (false: full build).
    pub delta: bool,
    /// Wall-clock build time, nanoseconds.
    pub build_ns: u64,
    /// Resolved activity records in the snapshot.
    pub records_total: usize,
    /// Records served by reusing the previous epoch's shared segments —
    /// activities that paid no resolution cost this epoch.
    pub records_reused: usize,
    /// Segments backing the activity store.
    pub segments_total: usize,
    /// Segments reused from the previous epoch by `Arc` clone.
    pub segments_reused: usize,
}

impl SnapshotBuildStats {
    /// Fraction of activity records whose resolution was reused from the
    /// previous epoch (0 for a full build or an empty snapshot).
    pub fn chunk_reuse_ratio(&self) -> f64 {
        if self.records_total == 0 {
            0.0
        } else {
            self.records_reused as f64 / self.records_total as f64
        }
    }
}

/// Wash-volume float totals forwarded from an already-computed
/// characterization. Both are flat folds over the confirmed records in their
/// stored order — exactly the fold [`Snapshot`] would run itself — so
/// forwarding them skips an O(records) walk over (mostly cold, shared)
/// record memory per publish without changing a single bit; the parity suite
/// pins the equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WashVolumes {
    /// Total wash-traded volume in ETH.
    pub eth: f64,
    /// Total wash-traded volume in USD at trade time.
    pub usd: f64,
}

/// Dataset-level counters a snapshot reports; extracted from the dataset
/// (stream path) or the report (batch path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct DatasetTotals {
    nfts: usize,
    transfers: usize,
    raw_transfer_events: usize,
    compliant_contracts: usize,
    non_compliant_contracts: usize,
}

/// The owned snapshot state all clones share. Heavy indexes sit behind their
/// own `Arc` so a delta build whose input region is unchanged shares them
/// with the previous epoch instead of rebuilding.
#[derive(Debug)]
struct SnapshotInner {
    stats: SnapshotStats,
    /// Confirmed activities in the pipeline's deterministic confirmed order,
    /// segmented at NFT boundaries for cross-epoch sharing.
    activities: SegmentedVec<ActivityRecord>,
    /// Involved accounts, sorted by address; the key space of
    /// `account_postings`.
    accounts: Arc<Vec<Address>>,
    /// Account position → indexes into `activities`.
    account_postings: Arc<Postings<u32>>,
    /// Suspect NFTs sorted by identity, for point lookups.
    suspects: Arc<Vec<NftSummary>>,
    /// Suspect NFTs sorted by `(confirmed_at, nft)` — the block-windowed
    /// log, prefix-shared across epochs (new confirmations append).
    suspect_log: SegmentedVec<(BlockNumber, NftId)>,
    /// Suspect NFTs ranked by `(volume desc, nft asc)`.
    ranking: Arc<Vec<(NftId, Wei)>>,
    /// Per-collection rollups, heaviest (USD) first.
    collections: Arc<Vec<CollectionRollup>>,
    /// Dense interner key of each activity segment's NFT, aligned 1:1 with
    /// the segments — lets the next delta build's cursor walk compare groups
    /// in key space (one contiguous `u32` table) instead of resolving every
    /// dense key through the interner. Populated by delta builds only; empty
    /// on snapshots built from resolved records, where the walk falls back
    /// to resolving. Derived data, excluded from equality.
    segment_keys: Arc<Vec<NftKey>>,
    /// Per-marketplace rollups, heaviest (USD) first — the Table II shape.
    marketplaces: Arc<Vec<MarketplaceWashRow>>,
    /// Build provenance; excluded from equality.
    build: SnapshotBuildStats,
}

/// Content equality over every index and counter; build provenance is
/// deliberately excluded so a delta-built snapshot equals the full rebuild
/// it must be indistinguishable from.
impl PartialEq for SnapshotInner {
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats
            && self.activities == other.activities
            && self.accounts == other.accounts
            && self.account_postings == other.account_postings
            && self.suspects == other.suspects
            && self.suspect_log == other.suspect_log
            && self.ranking == other.ranking
            && self.collections == other.collections
            && self.marketplaces == other.marketplaces
    }
}

/// An immutable, epoch-versioned view of the analysis results, shared by
/// reference count. See the [module docs](self) for the index inventory.
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

/// Content equality (not pointer equality): two snapshots are equal iff
/// every index and counter matches — what the batch/stream parity test
/// compares.
impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

impl Snapshot {
    /// The epoch-zero snapshot: nothing ingested, every query empty.
    pub fn empty() -> Snapshot {
        Snapshot::assemble(
            SnapshotMeta::default(),
            DatasetTotals::default(),
            Vec::new(),
            Vec::new(),
            &HashMap::new(),
        )
    }

    /// Build a snapshot from the streaming analyzer's dense layers: the
    /// confirmed activities still in dense-id form, the growing dataset
    /// (interner + columns + compliance verdicts), and the per-NFT
    /// confirmation blocks. Every id is resolved here, exactly once.
    pub fn from_dense(
        meta: SnapshotMeta,
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        confirmed_at: &HashMap<NftId, BlockNumber>,
    ) -> Snapshot {
        let records =
            Snapshot::dense_records(confirmed, dataset, directory, oracle, paper_catalogue());
        let table1 = dataset.marketplace_volumes(directory, oracle);
        let marketplaces = rollup_marketplaces(&records, &table1);
        Snapshot::assemble(meta, dataset_totals(dataset), records, marketplaces, confirmed_at)
    }

    /// [`Snapshot::from_dense`] with the per-marketplace rollup rows passed
    /// in instead of recomputed. The streaming analyzer publishes through
    /// this seam: its `Characterization::per_marketplace` rows are
    /// bit-identical to what [`Snapshot::from_dense`] would derive (the
    /// parity suite pins that), and reusing them avoids a second
    /// O(all-transfers) `marketplace_volumes` scan per epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn from_dense_with_marketplaces(
        meta: SnapshotMeta,
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        confirmed_at: &HashMap<NftId, BlockNumber>,
        marketplaces: Vec<MarketplaceWashRow>,
        wash_volumes: Option<WashVolumes>,
    ) -> Snapshot {
        let records =
            Snapshot::dense_records(confirmed, dataset, directory, oracle, paper_catalogue());
        Snapshot::assemble_with_volumes(
            meta,
            dataset_totals(dataset),
            records,
            marketplaces,
            confirmed_at,
            wash_volumes,
        )
    }

    /// Delta-encode the epoch-N+1 snapshot against epoch N: every NFT *not*
    /// in `changed` reuses `previous`'s resolved activity segment by `Arc`
    /// clone, and only changed NFTs pay the per-activity resolution (USD
    /// pricing, dominant venue, pattern classification, address resolution).
    /// When `changed` is empty, every index is shared wholesale and only the
    /// stats line is re-stamped — O(1) in the world size.
    ///
    /// `changed` must contain every NFT whose confirmed dense activities
    /// differ from the state `previous` was built from (the streaming
    /// analyzer derives it by diffing consecutive dense confirmed sets, so
    /// leverage-induced confirmation flips on untouched graphs are caught).
    /// An NFT conservatively listed as changed is merely re-resolved; the
    /// result is **bit-identical** to the full rebuild either way, which the
    /// AsOf-parity gate enforces.
    #[allow(clippy::too_many_arguments)]
    pub fn delta_from_dense(
        previous: &Snapshot,
        meta: SnapshotMeta,
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        confirmed_at: &HashMap<NftId, BlockNumber>,
        marketplaces: Vec<MarketplaceWashRow>,
        changed: &BTreeSet<NftId>,
        wash_volumes: Option<WashVolumes>,
    ) -> Snapshot {
        let started = Instant::now();
        let _build_span = obs::span!("serve.snapshot.delta_build_ns");
        let totals = dataset_totals(dataset);
        let prev = &previous.inner;

        // Nothing in the confirmed set moved: share every index, re-stamp
        // the stats line with the new epoch/watermark/dataset counters.
        if changed.is_empty() && prev.activities.len() == confirmed.len() {
            let build = SnapshotBuildStats {
                delta: true,
                build_ns: elapsed_ns(started),
                records_total: prev.activities.len(),
                records_reused: prev.activities.len(),
                segments_total: prev.activities.segment_count(),
                segments_reused: prev.activities.segment_count(),
            };
            note_delta_metrics(&build);
            return Snapshot {
                inner: Arc::new(SnapshotInner {
                    stats: SnapshotStats {
                        epoch: meta.epoch,
                        watermark: meta.watermark,
                        dataset_nfts: totals.nfts,
                        dataset_transfers: totals.transfers,
                        raw_transfer_events: totals.raw_transfer_events,
                        compliant_contracts: totals.compliant_contracts,
                        non_compliant_contracts: totals.non_compliant_contracts,
                        ..prev.stats
                    },
                    activities: prev.activities.clone(),
                    accounts: Arc::clone(&prev.accounts),
                    account_postings: Arc::clone(&prev.account_postings),
                    suspects: Arc::clone(&prev.suspects),
                    suspect_log: prev.suspect_log.clone(),
                    ranking: Arc::clone(&prev.ranking),
                    collections: Arc::clone(&prev.collections),
                    segment_keys: Arc::clone(&prev.segment_keys),
                    marketplaces: Arc::new(marketplaces),
                    build,
                }),
            };
        }

        // Merge-walk the new confirmed groups (ascending resolved NFT, the
        // confirmed sort order) against the previous epoch's segments.
        let interner = &dataset.interner;
        let catalogue = paper_catalogue();
        // The changed set, translated to dense keys once: the per-group
        // membership test becomes a binary search over a few dozen integers
        // instead of a tree walk comparing full NFT ids.
        let mut changed_keys: Vec<usize> = changed
            .iter()
            .filter_map(|nft| interner.nft_key(*nft).map(|key| key.index()))
            .collect();
        changed_keys.sort_unstable();
        let prev_segments = prev.activities.segments();
        // The previous suspect table is aligned 1:1 with the previous
        // segments and carries each one's NFT and length — the cursor walk
        // reads it instead of the segments themselves, turning a pointer
        // chase per segment into a scan of one contiguous table. When the
        // previous snapshot also carries its segments' dense keys (any
        // delta-built ancestor does), group identity is one `u32` compare
        // and the interner is consulted only around actual differences.
        let prev_nfts: &[NftSummary] = &prev.suspects;
        let prev_keys: Option<&[NftKey]> =
            (prev.segment_keys.len() == prev_nfts.len()).then(|| &prev.segment_keys[..]);
        // Warm every previous segment's `Arc` header in one tight pass: the
        // refcount bumps below are the walk's only touches of
        // non-contiguous memory, and issued one-per-reuse they serialize on
        // cache misses, while this loop keeps many in flight. One line per
        // segment — L2-resident by the time the walk needs it.
        for segment in prev_segments {
            std::hint::black_box(Arc::strong_count(segment));
        }
        let mut cursor = 0usize;
        let mut activities = SegmentedVec::new();
        // Per new segment: the previous segment it was reused from, if any —
        // the provenance the index assembly uses to patch (rather than
        // rebuild) the derived indexes — plus the segment's dense key, kept
        // for the next epoch's walk.
        let mut reused_from: Vec<Option<usize>> = Vec::new();
        let mut segment_keys: Vec<NftKey> = Vec::new();
        let mut records_reused = 0usize;
        let mut segments_reused = 0usize;
        let mut index = 0;
        while index < confirmed.len() {
            let key = confirmed[index].candidate.nft;
            let reusable = if changed_keys.binary_search(&key.index()).is_ok() {
                None
            } else {
                // Resolved lazily: with a key table on the previous side the
                // common exact-match step never needs the NFT identity, only
                // ordering around a mismatch does.
                let mut nft: Option<NftId> = None;
                loop {
                    let Some(summary) = prev_nfts.get(cursor) else { break None };
                    let same = match prev_keys {
                        Some(keys) => keys[cursor] == key,
                        None => summary.nft == *nft.get_or_insert_with(|| interner.nft(key)),
                    };
                    if same {
                        break Some((cursor, summary.activities));
                    }
                    if summary.nft < *nft.get_or_insert_with(|| interner.nft(key)) {
                        cursor += 1;
                    } else {
                        break None;
                    }
                }
            };
            segment_keys.push(key);
            if let Some((at, length)) = reusable {
                // An unchanged NFT's group must be exactly as long as its
                // previous segment; groups are contiguous, so two boundary
                // probes verify that without scanning the group. A wrong
                // `changed` set fails the probes and degrades to
                // re-resolution, never to a corrupt snapshot.
                let end = index + length;
                let covers = end <= confirmed.len()
                    && confirmed[end - 1].candidate.nft == key
                    && (end == confirmed.len() || confirmed[end].candidate.nft != key);
                if covers {
                    records_reused += length;
                    segments_reused += 1;
                    cursor = at + 1;
                    activities.push_segment(Arc::clone(&prev_segments[at]));
                    reused_from.push(Some(at));
                    index = end;
                    continue;
                }
            }
            let mut end = index + 1;
            while end < confirmed.len() && confirmed[end].candidate.nft == key {
                end += 1;
            }
            activities.push_segment(Arc::new(Snapshot::dense_records(
                &confirmed[index..end],
                dataset,
                directory,
                oracle,
                catalogue,
            )));
            reused_from.push(None);
            index = end;
        }

        let base = DeltaBase { prev, reused_from: &reused_from };
        let mut snapshot = Snapshot::assemble_indexes(
            meta,
            totals,
            activities,
            marketplaces,
            confirmed_at,
            Some(&base),
            segment_keys,
            wash_volumes,
        );
        let inner = Arc::get_mut(&mut snapshot.inner).expect("freshly built snapshot is unshared");
        inner.build = SnapshotBuildStats {
            delta: true,
            build_ns: elapsed_ns(started),
            records_total: inner.activities.len(),
            records_reused,
            segments_total: inner.activities.segment_count(),
            segments_reused,
        };
        note_delta_metrics(&inner.build);
        snapshot
    }

    /// Resolve dense confirmed activities into serving records — the one
    /// place stream-side ids become addresses.
    fn dense_records(
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        catalogue: &PatternCatalogue,
    ) -> Vec<ActivityRecord> {
        let interner = &dataset.interner;
        let records: Vec<ActivityRecord> = confirmed
            .iter()
            .map(|activity| {
                let candidate = &activity.candidate;
                let volume_usd = candidate
                    .internal_edges
                    .iter()
                    .map(|(_, _, edge)| {
                        oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0)
                    })
                    .sum();
                let marketplace = candidate
                    .dominant_marketplace(interner)
                    .and_then(|id| directory.by_contract(interner.market(id)))
                    .map(|info| info.name.clone());
                let shape = component_shape(candidate);
                ActivityRecord {
                    nft: interner.nft(candidate.nft),
                    accounts: candidate.accounts.iter().map(|&id| interner.address(id)).collect(),
                    volume: candidate.volume,
                    volume_usd,
                    marketplace,
                    pattern: catalogue
                        .classify(candidate.accounts.len(), &shape)
                        .map(|PatternId(id)| id),
                    first_trade: candidate.first_trade,
                    last_trade: candidate.last_trade,
                    methods: activity.methods,
                }
            })
            .collect();
        records
    }

    /// Build a snapshot from a finished batch [`AnalysisReport`] — the
    /// serving layer without a live analyzer. Confirmation blocks are not
    /// part of a batch report, so every suspect is dated to the last covered
    /// block (`meta.watermark - 1`); everything else is identical to the
    /// snapshot a stream publishes after ingesting the same chain.
    pub fn from_report(
        report: &AnalysisReport,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        meta: SnapshotMeta,
    ) -> Snapshot {
        let catalogue = paper_catalogue();
        let records: Vec<ActivityRecord> = report
            .detection
            .confirmed
            .iter()
            .map(|activity| {
                let candidate = &activity.candidate;
                let volume_usd = candidate
                    .internal_edges
                    .iter()
                    .map(|(_, _, edge)| {
                        oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0)
                    })
                    .sum();
                let marketplace = candidate
                    .dominant_marketplace()
                    .and_then(|contract| directory.by_contract(contract))
                    .map(|info| info.name.clone());
                ActivityRecord {
                    nft: candidate.nft,
                    accounts: candidate.accounts.clone(),
                    volume: candidate.volume,
                    volume_usd,
                    marketplace,
                    pattern: catalogue
                        .classify(candidate.accounts.len(), &candidate.shape())
                        .map(|PatternId(id)| id),
                    first_trade: candidate.first_trade,
                    last_trade: candidate.last_trade,
                    methods: activity.methods,
                }
            })
            .collect();
        let totals = DatasetTotals {
            nfts: report.dataset_nfts,
            transfers: report.dataset_transfers,
            raw_transfer_events: report.raw_transfer_events,
            compliant_contracts: report.compliant_contracts,
            non_compliant_contracts: report.non_compliant_contracts,
        };
        // The report's Table II rows are exactly the rollup this snapshot
        // would derive from `records` and `report.table1` (the parity suite
        // pins the equality) — reuse them instead of recomputing.
        let marketplaces = report.characterization.per_marketplace.clone();
        Snapshot::assemble(meta, totals, records, marketplaces, &HashMap::new())
    }

    /// Full (non-delta) assembly: segment the resolved records at NFT
    /// boundaries and build every index.
    fn assemble(
        meta: SnapshotMeta,
        totals: DatasetTotals,
        records: Vec<ActivityRecord>,
        marketplaces: Vec<MarketplaceWashRow>,
        confirmed_at: &HashMap<NftId, BlockNumber>,
    ) -> Snapshot {
        Snapshot::assemble_with_volumes(meta, totals, records, marketplaces, confirmed_at, None)
    }

    /// [`Snapshot::assemble`] with the float wash-volume totals optionally
    /// forwarded from an already-computed characterization instead of
    /// re-folded over every record.
    fn assemble_with_volumes(
        meta: SnapshotMeta,
        totals: DatasetTotals,
        records: Vec<ActivityRecord>,
        marketplaces: Vec<MarketplaceWashRow>,
        confirmed_at: &HashMap<NftId, BlockNumber>,
        wash_volumes: Option<WashVolumes>,
    ) -> Snapshot {
        let started = Instant::now();
        let _build_span = obs::span!("serve.snapshot.build_ns");
        // Canonicalize to ascending-NFT order (stable, so intra-NFT order is
        // kept). Pipeline outputs already arrive sorted — the sort is a
        // no-op there — but every index below, and delta builds on top of
        // this snapshot, rely on the invariant.
        let mut records = records;
        records.sort_by_key(|record| record.nft);
        let activities = segment_by_nft(records);
        let mut snapshot = Snapshot::assemble_indexes(
            meta,
            totals,
            activities,
            marketplaces,
            confirmed_at,
            None,
            Vec::new(),
            wash_volumes,
        );
        let inner = Arc::get_mut(&mut snapshot.inner).expect("freshly built snapshot is unshared");
        inner.build = SnapshotBuildStats {
            delta: false,
            build_ns: elapsed_ns(started),
            records_total: inner.activities.len(),
            records_reused: 0,
            segments_total: inner.activities.segment_count(),
            segments_reused: 0,
        };
        snapshot
    }

    /// Assemble every index from the (possibly shared) resolved activity
    /// store and pre-computed marketplace rollup rows. `confirmed_at` dates
    /// each suspect NFT; missing entries fall back to the last covered
    /// block. All floating-point accumulation walks the records in their
    /// given (deterministic, confirmed) order, so full- and delta-built
    /// snapshots of the same state are bit-identical. With `delta`, the
    /// derived indexes are patched from the previous epoch's — dropped
    /// and re-merged around the changed NFTs — instead of rebuilt, so
    /// index-assembly cost follows the epoch delta, not the world size.
    #[allow(clippy::too_many_arguments)]
    fn assemble_indexes(
        meta: SnapshotMeta,
        totals: DatasetTotals,
        activities: SegmentedVec<ActivityRecord>,
        marketplaces: Vec<MarketplaceWashRow>,
        confirmed_at: &HashMap<NftId, BlockNumber>,
        delta: Option<&DeltaBase<'_>>,
        segment_keys: Vec<NftKey>,
        wash_volumes: Option<WashVolumes>,
    ) -> Snapshot {
        let tip = BlockNumber(meta.watermark.0.saturating_sub(1));

        // Point-lookup table and its two derived orders (log, ranking). The
        // activity store is segmented at NFT boundaries in ascending NFT
        // order on every build path, so one pass over the segments yields
        // the NFT-sorted summary table, aligned 1:1 with the segments — an
        // invariant the delta paths below lean on. The same pass collects
        // the summary diff the index patches key off: which previous
        // positions were carried over (the rest go stale) and which current
        // summaries are freshly resolved.
        let mut suspects: Vec<NftSummary> = Vec::with_capacity(activities.segment_count());
        let mut kept = vec![false; delta.map_or(0, |base| base.prev.suspects.len())];
        let mut fresh: Vec<NftSummary> = Vec::new();
        for (position, segment) in activities.segments().iter().enumerate() {
            // A reused segment's summary is its previous one, copied whole:
            // its records are byte-identical, and its confirmation block
            // cannot have moved — a re-confirmation always comes with
            // changed records, which the `changed` diff turns into a fresh
            // segment. (The retention proptest pins this against the full
            // rebuild across hundreds of worlds.)
            if let Some((old, previous)) = delta.and_then(|base| {
                let old = base.reused_from[position]?;
                Some((old, base.prev.suspects.get(old).copied()?))
            }) {
                kept[old] = true;
                suspects.push(previous);
                continue;
            }
            let nft = segment[0].nft;
            let mut volume = Wei::ZERO;
            for record in segment.iter() {
                volume += record.volume;
            }
            let summary = NftSummary {
                nft,
                activities: segment.len(),
                volume,
                confirmed_at: confirmed_at.get(&nft).copied().unwrap_or(tip),
            };
            if delta.is_some() {
                fresh.push(summary);
            }
            suspects.push(summary);
        }

        // Log and ranking: merge-patched around the summary diff on the
        // delta path, sorted from scratch otherwise. Both comparators are
        // total orders over unique NFTs, so merge and sort agree bit for
        // bit.
        let (suspect_log, ranking) = match delta {
            Some(base) => {
                // Previous positions not carried over go stale; a
                // re-resolved NFT whose summary happens to be unchanged
                // lands in both lists, and the patches drop and re-insert
                // the identical entry in place — still bit-identical to a
                // value-level diff of the two tables.
                let stale: Vec<NftSummary> = kept
                    .iter()
                    .enumerate()
                    .filter(|(_, kept)| !**kept)
                    .map(|(old, _)| base.prev.suspects[old])
                    .collect();
                let diff = SummaryDiff { stale, fresh };
                let mut fresh_log: Vec<(BlockNumber, NftId)> =
                    diff.fresh.iter().map(|summary| (summary.confirmed_at, summary.nft)).collect();
                fresh_log.sort_unstable();
                let mut drop_log: Vec<(BlockNumber, NftId)> =
                    diff.stale.iter().map(|summary| (summary.confirmed_at, summary.nft)).collect();
                drop_log.sort_unstable();
                let suspect_log = patch_log(&base.prev.suspect_log, &drop_log, &fresh_log);

                let rank_key = |(nft, volume): &(NftId, Wei)| (std::cmp::Reverse(*volume), *nft);
                let mut fresh_rank: Vec<(NftId, Wei)> =
                    diff.fresh.iter().map(|summary| (summary.nft, summary.volume)).collect();
                fresh_rank.sort_unstable_by_key(rank_key);
                let mut drop_rank: Vec<(NftId, Wei)> =
                    diff.stale.iter().map(|summary| (summary.nft, summary.volume)).collect();
                drop_rank.sort_unstable_by_key(rank_key);
                let ranking = splice_patched(&base.prev.ranking, &drop_rank, &fresh_rank, rank_key);
                (suspect_log, ranking)
            }
            None => {
                let mut log_entries: Vec<(BlockNumber, NftId)> =
                    suspects.iter().map(|summary| (summary.confirmed_at, summary.nft)).collect();
                log_entries.sort_unstable();
                let mut ranking: Vec<(NftId, Wei)> =
                    suspects.iter().map(|summary| (summary.nft, summary.volume)).collect();
                ranking.sort_unstable_by_key(|(nft, volume)| (std::cmp::Reverse(*volume), *nft));
                (share_log_prefix(None, log_entries), ranking)
            }
        };

        // Account postings: sorted involved-account table + CSR into the
        // activity list.
        let (accounts, account_postings) = match delta {
            Some(base) => delta_postings(base, &activities),
            None => full_postings(&activities),
        };

        // Collection rollups. NFT ids order by contract first, so each
        // collection is one contiguous run of segments on every build path.
        // Full builds fold every run from its records and sort; delta builds
        // walk the current and previous contract runs in lockstep (both are
        // contract-ascending), re-fold only the dirty runs, and merge-patch
        // them into the previous sorted table — the fold and the comparator
        // are shared, so both paths agree bit for bit.
        let collections: Vec<CollectionRollup> = match delta {
            Some(base) => delta_collections(base, &suspects, &activities),
            None => {
                let mut rows: Vec<CollectionRollup> = contract_runs(&suspects)
                    .map(|(contract, run)| rollup_collection(contract, &activities.segments()[run]))
                    .collect();
                rows.sort_by(compare_collection_rows);
                rows
            }
        };

        // Totals. The Wei total is exact integer arithmetic, so summing the
        // per-segment subtotals already sitting in the (contiguous) suspect
        // table equals the flat record fold bit for bit. The float totals
        // are order-sensitive: use the forwarded characterization fold when
        // the caller has one (same sequence, same order, same bits — pinned
        // by the parity suite), and run the flat record fold otherwise.
        let mut wash_volume = Wei::ZERO;
        for summary in &suspects {
            wash_volume += summary.volume;
        }
        let (wash_volume_eth, wash_volume_usd) = match wash_volumes {
            Some(volumes) => (volumes.eth, volumes.usd),
            None => {
                let mut eth = 0.0;
                let mut usd = 0.0;
                for segment in activities.segments() {
                    for record in segment.iter() {
                        eth += record.volume.to_eth();
                        usd += record.volume_usd;
                    }
                }
                (eth, usd)
            }
        };
        let stats = SnapshotStats {
            epoch: meta.epoch,
            watermark: meta.watermark,
            dataset_nfts: totals.nfts,
            dataset_transfers: totals.transfers,
            raw_transfer_events: totals.raw_transfer_events,
            compliant_contracts: totals.compliant_contracts,
            non_compliant_contracts: totals.non_compliant_contracts,
            confirmed_activities: activities.len(),
            suspect_nfts: suspects.len(),
            involved_accounts: accounts.len(),
            wash_volume,
            wash_volume_eth,
            wash_volume_usd,
        };

        Snapshot {
            inner: Arc::new(SnapshotInner {
                stats,
                activities,
                accounts: Arc::new(accounts),
                account_postings: Arc::new(account_postings),
                suspects: Arc::new(suspects),
                suspect_log,
                ranking: Arc::new(ranking),
                collections: Arc::new(collections),
                segment_keys: Arc::new(segment_keys),
                marketplaces: Arc::new(marketplaces),
                build: SnapshotBuildStats::default(),
            }),
        }
    }

    /// Epoch number of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.inner.stats.epoch
    }

    /// First block not covered by this snapshot.
    pub fn watermark(&self) -> BlockNumber {
        self.inner.stats.watermark
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SnapshotStats {
        self.inner.stats
    }

    /// How this snapshot was built (delta vs full, wall time, chunk reuse).
    pub fn build_stats(&self) -> SnapshotBuildStats {
        self.inner.build
    }

    /// The confirmed activities, fully resolved, in confirmed order.
    pub fn activities(&self) -> impl Iterator<Item = &ActivityRecord> + '_ {
        self.inner.activities.iter()
    }

    /// Accounts involved in at least one confirmed activity, ascending.
    pub fn accounts(&self) -> &[Address] {
        &self.inner.accounts
    }

    /// Every suspect NFT's summary, ascending by NFT identity.
    pub fn suspects(&self) -> &[NftSummary] {
        &self.inner.suspects
    }

    /// Point lookup: the summary of one suspect NFT, `None` if the NFT has
    /// no confirmed activity in this snapshot.
    pub fn suspect(&self, nft: NftId) -> Option<NftSummary> {
        self.inner
            .suspects
            .binary_search_by_key(&nft, |summary| summary.nft)
            .ok()
            .map(|index| self.inner.suspects[index])
    }

    /// Suspect NFTs whose latest confirmation happened at or after `block`,
    /// ascending by NFT identity: a binary search into the block-sorted
    /// suspect log plus a suffix walk — O(log n + answer), not O(all NFTs).
    pub fn suspects_since(&self, block: BlockNumber) -> Vec<NftId> {
        let log = &self.inner.suspect_log;
        let start = partition_point_log(log, |(confirmed_at, _)| *confirmed_at < block);
        let mut suspects: Vec<NftId> = (start..log.len()).map(|index| log.get(index).1).collect();
        suspects.sort_unstable();
        suspects
    }

    /// Suspect NFTs whose latest confirmation lies in `first..=last`,
    /// ascending by NFT identity.
    pub fn suspects_between(&self, first: BlockNumber, last: BlockNumber) -> Vec<NftId> {
        let log = &self.inner.suspect_log;
        let start = partition_point_log(log, |(confirmed_at, _)| *confirmed_at < first);
        let end = partition_point_log(log, |(confirmed_at, _)| *confirmed_at <= last);
        let mut suspects: Vec<NftId> =
            (start..end.max(start)).map(|index| log.get(index).1).collect();
        suspects.sort_unstable();
        suspects
    }

    /// The `n` suspect NFTs with the largest wash volume, descending (ties
    /// broken by NFT identity): a prefix of the precomputed ranking.
    pub fn top_movers(&self, n: usize) -> Vec<(NftId, Wei)> {
        self.inner.ranking.iter().take(n).copied().collect()
    }

    /// One account's wash-trading dossier, derived from the postings index;
    /// `None` if the account participates in no confirmed activity.
    pub fn dossier(&self, account: Address) -> Option<AccountDossier> {
        let position = self.inner.accounts.binary_search(&account).ok()?;
        let postings = self.inner.account_postings.get(position as u32);
        let mut nfts = Vec::new();
        let mut collaborators = Vec::new();
        let mut wash_volume = Wei::ZERO;
        for &index in postings {
            let record = self.inner.activities.get(index as usize);
            nfts.push(record.nft);
            wash_volume += record.volume;
            collaborators.extend(record.accounts.iter().copied().filter(|&a| a != account));
        }
        nfts.sort_unstable();
        nfts.dedup();
        collaborators.sort_unstable();
        collaborators.dedup();
        Some(AccountDossier {
            account,
            activities: postings.len(),
            nfts,
            wash_volume,
            collaborators,
        })
    }

    /// Per-collection rollups, heaviest wash volume (USD) first.
    pub fn collections(&self) -> &[CollectionRollup] {
        &self.inner.collections
    }

    /// The `n` heaviest collections.
    pub fn top_collections(&self, n: usize) -> Vec<CollectionRollup> {
        self.inner.collections.iter().take(n).cloned().collect()
    }

    /// Per-marketplace wash rollups — the same rows, values and order as
    /// `Characterization::per_marketplace` (Table II).
    pub fn marketplaces(&self) -> &[MarketplaceWashRow] {
        &self.inner.marketplaces
    }
}

/// The Fig. 7 pattern catalogue, built once per process: it is a fixed
/// paper constant, and constructing it (12 canonicalized digraphs) is
/// measurable against a delta publish's budget.
fn paper_catalogue() -> &'static PatternCatalogue {
    static CATALOGUE: std::sync::OnceLock<PatternCatalogue> = std::sync::OnceLock::new();
    CATALOGUE.get_or_init(PatternCatalogue::paper)
}

/// Wall-clock nanoseconds since `started`, saturating.
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Record the delta-build counters the bench reads as the chunk-reuse ratio.
fn note_delta_metrics(build: &SnapshotBuildStats) {
    obs::counter!("serve.snapshot.delta_builds");
    obs::counter!("serve.snapshot.records_reused", build.records_reused as u64);
    obs::counter!(
        "serve.snapshot.records_resolved",
        (build.records_total - build.records_reused) as u64
    );
}

/// What a delta build knows about its base: the previous epoch's inner
/// state, and for each segment of the new activity store, the previous
/// segment it was `Arc`-reused from (`None` for re-resolved segments). The
/// index-patching paths in `assemble_indexes` are driven by this.
struct DeltaBase<'a> {
    prev: &'a SnapshotInner,
    reused_from: &'a [Option<usize>],
}

/// The per-NFT summary diff between two epochs' (NFT-sorted) suspect
/// tables, read straight off the segment-reuse map while the summary table
/// is assembled: a reused segment's summary is its previous one copied
/// whole, so only re-resolved positions can differ — no elementwise table
/// compare needed. Both sides come out ascending by NFT (positions are
/// visited in order).
struct SummaryDiff {
    /// Previous-side summaries of NFTs that were not carried over whole —
    /// their log and ranking entries are dropped before merging.
    stale: Vec<NftSummary>,
    /// Current-side summaries of NFTs that were re-resolved this epoch —
    /// re-sorted per index and merged in.
    fresh: Vec<NftSummary>,
}

/// Patch a sorted sequence: drop the `drop` entries — each present in
/// `prev`, sorted the same way — and merge in the sorted `fresh` entries.
/// All inputs hold distinct keys, so the output equals sorting
/// `(prev \ drop) ∪ fresh` — what the full build computes.
fn merge_patched<T: Copy, K: Ord>(
    prev: impl Iterator<Item = T>,
    drop: &[T],
    fresh: &[T],
    key: impl Fn(&T) -> K,
    capacity: usize,
) -> Vec<T> {
    let mut out = Vec::with_capacity(capacity);
    let (mut d, mut f) = (0, 0);
    for item in prev {
        if d < drop.len() && key(&drop[d]) == key(&item) {
            d += 1;
            continue;
        }
        while f < fresh.len() && key(&fresh[f]) < key(&item) {
            out.push(fresh[f]);
            f += 1;
        }
        out.push(item);
    }
    out.extend_from_slice(&fresh[f..]);
    out
}

/// [`merge_patched`] for slice-backed tables: kept runs of `prev` are
/// copied wholesale and only the edit positions are binary-searched, so
/// the cost is O(edits · log n) plus the output memcpy — not a per-item
/// walk. A drop and an insert carrying the same key apply drop-first,
/// which is exactly where [`merge_patched`] re-inserts a re-resolved
/// entry, so the two agree bit for bit.
fn splice_patched<T: Copy, K: Ord>(
    prev: &[T],
    drop: &[T],
    fresh: &[T],
    key: impl Fn(&T) -> K,
) -> Vec<T> {
    let mut out = Vec::with_capacity(prev.len() - drop.len() + fresh.len());
    let (mut d, mut f) = (0, 0);
    let mut cursor = 0;
    loop {
        let drop_first = match (drop.get(d), fresh.get(f)) {
            (None, None) => break,
            (Some(stale), Some(new)) => key(stale) <= key(new),
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if drop_first {
            let at = cursor + prev[cursor..].partition_point(|entry| key(entry) < key(&drop[d]));
            debug_assert!(at < prev.len() && key(&prev[at]) == key(&drop[d]));
            out.extend_from_slice(&prev[cursor..at]);
            cursor = at + 1;
            d += 1;
        } else {
            let at = cursor + prev[cursor..].partition_point(|entry| key(entry) < key(&fresh[f]));
            out.extend_from_slice(&prev[cursor..at]);
            out.push(fresh[f]);
            cursor = at;
            f += 1;
        }
    }
    out.extend_from_slice(&prev[cursor..]);
    out
}

/// Patch the block-sorted suspect log around its first edited position.
/// Prefix segments strictly before the first dropped or inserted key are
/// shared untouched — the edit keys prove their entries cannot have moved,
/// so unlike [`share_log_prefix`] no elementwise compare is needed — and
/// everything from the boundary segment on is rebuilt as one merged tail.
fn patch_log(
    prev: &SegmentedVec<(BlockNumber, NftId)>,
    drop: &[(BlockNumber, NftId)],
    fresh: &[(BlockNumber, NftId)],
) -> SegmentedVec<(BlockNumber, NftId)> {
    let first_edit = match (drop.first(), fresh.first()) {
        (Some(stale), Some(new)) => *stale.min(new),
        (Some(stale), None) => *stale,
        (None, Some(new)) => *new,
        (None, None) => return prev.clone(),
    };
    let mut log = SegmentedVec::new();
    let segments = prev.segments();
    let mut shared = 0;
    let mut position = 0;
    while shared < segments.len() {
        match segments[shared].last() {
            Some(last) if *last < first_edit => {
                log.push_segment(Arc::clone(&segments[shared]));
                position += segments[shared].len();
                shared += 1;
            }
            _ => break,
        }
    }
    let remaining = segments[shared..].iter().flat_map(|segment| segment.iter().copied());
    let tail =
        merge_patched(remaining, drop, fresh, |entry| *entry, prev.len() - position + fresh.len());
    log.push_segment(Arc::new(tail));
    log
}

/// The involved-account table and its CSR postings, built from scratch: one
/// (account, activity) pair per account mention, sorted, deduped, and
/// grouped.
fn full_postings(activities: &SegmentedVec<ActivityRecord>) -> (Vec<Address>, Postings<u32>) {
    let mut pairs: Vec<(Address, u32)> = activities
        .iter()
        .enumerate()
        .flat_map(|(index, record)| {
            record.accounts.iter().map(move |account| (*account, index as u32))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut accounts: Vec<Address> = Vec::new();
    let mut offsets: Vec<u32> = vec![0];
    let mut values: Vec<u32> = Vec::with_capacity(pairs.len());
    let mut iter = pairs.into_iter().peekable();
    while let Some((account, activity)) = iter.next() {
        values.push(activity);
        match iter.peek() {
            Some((next, _)) if *next == account => {}
            _ => {
                accounts.push(account);
                offsets.push(values.len() as u32);
            }
        }
    }
    (accounts, Postings::from_parts(offsets, values))
}

/// The delta twin of [`full_postings`]: translate the previous epoch's
/// postings through the segment-reuse map (dropping entries of re-resolved
/// segments) and merge in the fresh segments' pairs, account by account.
/// Activity indices of reused segments shift monotonically, so translated
/// entry lists stay sorted and the merged table is bit-identical to the
/// from-scratch build — without the all-pairs sort.
fn delta_postings(
    base: &DeltaBase<'_>,
    activities: &SegmentedVec<ActivityRecord>,
) -> (Vec<Address>, Postings<u32>) {
    let prev = base.prev;
    let segments = activities.segments();

    // Old → new activity-index translation; `u32::MAX` marks entries of
    // prev segments that were not reused (their records re-resolved or
    // gone).
    const DROPPED: u32 = u32::MAX;
    let mut new_of_old = vec![DROPPED; prev.activities.len()];
    let mut fresh: Vec<(Address, u32)> = Vec::new();
    for (i, reused) in base.reused_from.iter().enumerate() {
        let new_start = activities.segment_offset(i);
        match *reused {
            Some(j) => {
                // The reused segment's length sits in the contiguous
                // previous suspect table — no need to chase the `Arc`.
                let old_start = prev.activities.segment_offset(j);
                let length = prev.suspects[j].activities;
                for k in 0..length {
                    new_of_old[old_start + k] = (new_start + k) as u32;
                }
            }
            None => {
                for (k, record) in segments[i].iter().enumerate() {
                    let index = (new_start + k) as u32;
                    fresh.extend(record.accounts.iter().map(|account| (*account, index)));
                }
            }
        }
    }
    fresh.sort_unstable();
    fresh.dedup();

    // The walk emits accounts ascending with their postings grouped, so the
    // CSR arrays are built directly — no pair sort, no regroup.
    let mut accounts: Vec<Address> = Vec::with_capacity(prev.accounts.len());
    let mut offsets: Vec<u32> = Vec::with_capacity(prev.accounts.len() + 1);
    offsets.push(0);
    let mut values: Vec<u32> = Vec::with_capacity(prev.account_postings.len() + fresh.len());
    let mut f = 0;
    // Emit every entry of one fresh-only account run.
    let emit_fresh_account = |f: &mut usize,
                              accounts: &mut Vec<Address>,
                              offsets: &mut Vec<u32>,
                              values: &mut Vec<u32>| {
        let address = fresh[*f].0;
        accounts.push(address);
        while *f < fresh.len() && fresh[*f].0 == address {
            values.push(fresh[*f].1);
            *f += 1;
        }
        offsets.push(values.len() as u32);
    };
    for (old_position, account) in prev.accounts.iter().enumerate() {
        while f < fresh.len() && fresh[f].0 < *account {
            emit_fresh_account(&mut f, &mut accounts, &mut offsets, &mut values);
        }
        let mut fresh_end = f;
        while fresh_end < fresh.len() && fresh[fresh_end].0 == *account {
            fresh_end += 1;
        }
        // Merge this account's translated kept entries with its fresh ones;
        // the index spaces are disjoint (reused vs re-resolved segments).
        // Accounts untouched by the epoch's churn — almost all of them —
        // have no fresh entries and skip the merge bound checks entirely.
        let before = values.len();
        let mut fi = f;
        if fi == fresh_end {
            for &old in prev.account_postings.get(old_position as u32) {
                let translated = new_of_old[old as usize];
                if translated != DROPPED {
                    values.push(translated);
                }
            }
        } else {
            for &old in prev.account_postings.get(old_position as u32) {
                let translated = new_of_old[old as usize];
                if translated == DROPPED {
                    continue;
                }
                while fi < fresh_end && fresh[fi].1 < translated {
                    values.push(fresh[fi].1);
                    fi += 1;
                }
                values.push(translated);
            }
        }
        for entry in &fresh[fi..fresh_end] {
            values.push(entry.1);
        }
        f = fresh_end;
        if values.len() > before {
            accounts.push(*account);
            offsets.push(values.len() as u32);
        }
    }
    while f < fresh.len() {
        emit_fresh_account(&mut f, &mut accounts, &mut offsets, &mut values);
    }
    (accounts, Postings::from_parts(offsets, values))
}

/// Iterate the contiguous per-collection (contract) runs of an NFT-sorted
/// segment list, as segment-index ranges.
fn contract_runs(
    suspects: &[NftSummary],
) -> impl Iterator<Item = (Address, std::ops::Range<usize>)> + '_ {
    let mut start = 0;
    std::iter::from_fn(move || {
        if start >= suspects.len() {
            return None;
        }
        let contract = suspects[start].nft.contract;
        let mut end = start + 1;
        while end < suspects.len() && suspects[end].nft.contract == contract {
            end += 1;
        }
        let run = start..end;
        start = end;
        Some((contract, run))
    })
}

/// Served order of the collections table: heaviest USD volume first,
/// contract address as the (unique) tiebreak — a total order, so a merge
/// against it agrees with a from-scratch sort bit for bit.
fn compare_collection_rows(a: &CollectionRollup, b: &CollectionRollup) -> std::cmp::Ordering {
    b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.collection.cmp(&b.collection))
}

/// Roll one collection's contiguous segment run up into its served row,
/// folding the records in their stored (ascending NFT, confirmed) order —
/// the one fold every build path uses.
fn rollup_collection(contract: Address, run: &[Arc<Vec<ActivityRecord>>]) -> CollectionRollup {
    let mut activities = 0;
    let mut volume_eth = 0.0;
    let mut volume_usd = 0.0;
    let mut patterns: BTreeMap<usize, usize> = BTreeMap::new();
    for segment in run {
        activities += segment.len();
        for record in segment.iter() {
            volume_eth += record.volume.to_eth();
            volume_usd += record.volume_usd;
            if let Some(pattern) = record.pattern {
                *patterns.entry(pattern).or_insert(0) += 1;
            }
        }
    }
    let mut sorted: Vec<(usize, usize)> = patterns.into_iter().collect();
    sorted.sort_by_key(|(pattern, count)| (std::cmp::Reverse(*count), *pattern));
    let mut top_patterns = [(0, 0); 3];
    for (slot, entry) in top_patterns.iter_mut().zip(sorted) {
        *slot = entry;
    }
    CollectionRollup {
        collection: contract,
        suspect_nfts: run.len(),
        activities,
        volume_eth,
        volume_usd,
        top_patterns,
    }
}

/// Patch the collections table around the epoch's dirty contract runs.
///
/// Current and previous segment stores are both segmented per NFT in
/// ascending NFT order, and NFT ids order by contract first — so both sides'
/// contract runs (read off the contiguous suspect tables, which align 1:1
/// with the segments) come out contract-ascending and a single lockstep walk
/// pairs them up. A run whose segments all map to the matching previous run,
/// in order and covering it entirely, keeps its previous row (same records,
/// same fold, same bits); every other run is re-folded from its records and
/// its previous row (if any) marked stale. The fresh rows are then merged
/// into the previous volume-sorted table with the stale rows dropped, which
/// equals re-sorting from scratch because [`compare_collection_rows`] is a
/// total order over unique contracts.
fn delta_collections(
    base: &DeltaBase<'_>,
    suspects: &[NftSummary],
    activities: &SegmentedVec<ActivityRecord>,
) -> Vec<CollectionRollup> {
    let mut stale: Vec<Address> = Vec::new();
    let mut fresh: Vec<CollectionRollup> = Vec::new();
    let mut prev_runs = contract_runs(&base.prev.suspects).peekable();
    for (contract, run) in contract_runs(suspects) {
        // Previous contracts we walked past no longer have suspects at all:
        // their rows drop with no replacement.
        while prev_runs.peek().is_some_and(|(previous, _)| *previous < contract) {
            stale.push(prev_runs.next().expect("peeked").0);
        }
        let matched = prev_runs.next_if(|(previous, _)| *previous == contract);
        let reused = matched.as_ref().is_some_and(|(_, prev_run)| {
            run.len() == prev_run.len()
                && run
                    .clone()
                    .zip(prev_run.clone())
                    .all(|(new, old)| base.reused_from[new] == Some(old))
        });
        if reused {
            continue;
        }
        if matched.is_some() {
            stale.push(contract);
        }
        fresh.push(rollup_collection(contract, &activities.segments()[run]));
    }
    stale.extend(prev_runs.map(|(contract, _)| contract));
    stale.sort_unstable();
    fresh.sort_by(compare_collection_rows);

    let previous = &base.prev.collections;
    let mut rows: Vec<CollectionRollup> = Vec::with_capacity(previous.len() + fresh.len());
    let mut pending = fresh.into_iter().peekable();
    for row in previous.iter() {
        if stale.binary_search(&row.collection).is_ok() {
            continue;
        }
        while pending
            .peek()
            .is_some_and(|next| compare_collection_rows(next, row) == std::cmp::Ordering::Less)
        {
            rows.push(pending.next().expect("peeked"));
        }
        rows.push(*row);
    }
    rows.extend(pending);
    rows
}

/// Cut resolved records into one segment per NFT (the confirmed order keeps
/// each NFT's activities contiguous) — the sharing granularity delta builds
/// reuse at.
fn segment_by_nft(records: Vec<ActivityRecord>) -> SegmentedVec<ActivityRecord> {
    let mut activities = SegmentedVec::new();
    let mut group: Vec<ActivityRecord> = Vec::new();
    for record in records {
        if let Some(first) = group.first() {
            if first.nft != record.nft {
                activities.push_segment(Arc::new(std::mem::take(&mut group)));
            }
        }
        group.push(record);
    }
    activities.push_segment(Arc::new(group));
    activities
}

/// Build the block-sorted suspect log, sharing the longest segment-aligned
/// prefix of the previous epoch's log. New confirmations carry the epoch's
/// last block and therefore sort to the end, so in the common append-only
/// case the whole previous log is reused and only a tail segment is built;
/// a lost or re-confirmed suspect invalidates the log from its segment on.
fn share_log_prefix(
    previous: Option<&SegmentedVec<(BlockNumber, NftId)>>,
    mut entries: Vec<(BlockNumber, NftId)>,
) -> SegmentedVec<(BlockNumber, NftId)> {
    let mut log = SegmentedVec::new();
    let mut position = 0;
    if let Some(previous) = previous {
        for segment in previous.segments() {
            let end = position + segment.len();
            if end <= entries.len() && entries[position..end] == segment[..] {
                log.push_segment(Arc::clone(segment));
                position = end;
            } else {
                break;
            }
        }
    }
    log.push_segment(Arc::new(entries.split_off(position)));
    log
}

/// `partition_point` over a [`SegmentedVec`]-backed sorted log.
fn partition_point_log(
    log: &SegmentedVec<(BlockNumber, NftId)>,
    predicate: impl Fn(&(BlockNumber, NftId)) -> bool,
) -> usize {
    let mut low = 0;
    let mut high = log.len();
    while low < high {
        let mid = low + (high - low) / 2;
        if predicate(log.get(mid)) {
            low = mid + 1;
        } else {
            high = mid;
        }
    }
    low
}

/// The snapshot's dataset counters, read off the growing dataset.
fn dataset_totals(dataset: &Dataset) -> DatasetTotals {
    DatasetTotals {
        nfts: dataset.nft_count(),
        transfers: dataset.transfer_count(),
        raw_transfer_events: dataset.raw_transfer_events,
        compliant_contracts: dataset.compliant_contracts.len(),
        non_compliant_contracts: dataset.non_compliant_contracts.len(),
    }
}

/// Derive the per-marketplace rollup rows from activity records plus the
/// Table I venue totals, mirroring the §V Table II computation exactly
/// (same grouping, accumulation order, share semantics and sort) — so the
/// derived rows equal `Characterization::per_marketplace` bit for bit, and
/// callers that already hold those rows may pass them instead
/// ([`Snapshot::from_dense_with_marketplaces`]).
fn rollup_marketplaces(
    records: &[ActivityRecord],
    table1: &[MarketplaceVolume],
) -> Vec<MarketplaceWashRow> {
    let market_totals: HashMap<&str, f64> =
        table1.iter().map(|row| (row.name.as_str(), row.volume_usd)).collect();
    struct MarketAccumulator {
        nfts: std::collections::BTreeSet<NftId>,
        activities: usize,
        volume_eth: f64,
        volume_usd: f64,
    }
    let mut per_market: HashMap<String, MarketAccumulator> = HashMap::new();
    for record in records {
        let name = record.marketplace.clone().unwrap_or_else(|| "Off-market".to_string());
        let accumulator = per_market.entry(name).or_insert(MarketAccumulator {
            nfts: std::collections::BTreeSet::new(),
            activities: 0,
            volume_eth: 0.0,
            volume_usd: 0.0,
        });
        accumulator.nfts.insert(record.nft);
        accumulator.activities += 1;
        accumulator.volume_eth += record.volume.to_eth();
        accumulator.volume_usd += record.volume_usd;
    }
    let mut marketplaces: Vec<MarketplaceWashRow> = per_market
        .iter()
        .map(|(name, accumulator)| MarketplaceWashRow {
            name: name.clone(),
            nfts: accumulator.nfts.len(),
            activities: accumulator.activities,
            volume_eth: accumulator.volume_eth,
            volume_usd: accumulator.volume_usd,
            share_of_marketplace_volume: market_totals.get(name.as_str()).map(|total| {
                if *total > 0.0 {
                    accumulator.volume_usd / total
                } else {
                    0.0
                }
            }),
        })
        .collect();
    marketplaces
        .sort_by(|a, b| b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.name.cmp(&b.name)));
    marketplaces
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Timestamp, TxHash};
    use ids::AccountId;
    use washtrade::refine::DenseCandidate;
    use washtrade::txgraph::DenseTradeEdge;

    /// Intern a small dense activity into `dataset`, mirroring the
    /// characterization test fixture: `edges` index into the sorted account
    /// list.
    fn activity(
        dataset: &mut Dataset,
        collection: &str,
        token: u64,
        accounts: &[&str],
        edges: &[(usize, usize, f64)],
        start_secs: u64,
    ) -> DenseActivity {
        let accounts: Vec<AccountId> = {
            let mut addresses: Vec<Address> =
                accounts.iter().map(|s| Address::derived(s)).collect();
            addresses.sort();
            addresses.into_iter().map(|a| dataset.interner.intern_account(a)).collect()
        };
        let nft = dataset.interner.intern_nft(NftId::new(Address::derived(collection), token));
        let internal_edges: Vec<(AccountId, AccountId, DenseTradeEdge)> = edges
            .iter()
            .enumerate()
            .map(|(i, (from, to, price))| {
                (
                    accounts[*from],
                    accounts[*to],
                    DenseTradeEdge {
                        timestamp: Timestamp::from_secs(start_secs + i as u64 * 3_600),
                        tx_hash: TxHash::hash_of(format!("{collection}-{token}-{i}").as_bytes()),
                        marketplace: None,
                        price: Wei::from_eth(*price),
                    },
                )
            })
            .collect();
        let first = internal_edges.iter().map(|(_, _, e)| e.timestamp).min().unwrap();
        let last = internal_edges.iter().map(|(_, _, e)| e.timestamp).max().unwrap();
        DenseActivity {
            candidate: DenseCandidate {
                nft,
                accounts,
                volume: internal_edges.iter().map(|(_, _, e)| e.price).sum(),
                first_trade: first,
                last_trade: last,
                internal_edges,
            },
            methods: MethodSet { zero_risk: true, ..MethodSet::default() },
        }
    }

    /// Sort dense activities into the pipeline's confirmed order.
    fn confirmed_order(
        dataset: &Dataset,
        mut activities: Vec<DenseActivity>,
    ) -> Vec<DenseActivity> {
        activities.sort_by_key(|activity| activity.candidate.sort_key(&dataset.interner));
        activities
    }

    fn fixture() -> Snapshot {
        let mut dataset = Dataset::default();
        let activities = vec![
            activity(&mut dataset, "meebits", 1, &["s1", "s2"], &[(0, 1, 1.0), (1, 0, 1.0)], 1_000),
            activity(&mut dataset, "meebits", 2, &["s1", "s2"], &[(0, 1, 2.0), (1, 0, 2.0)], 2_000),
            activity(
                &mut dataset,
                "loot",
                7,
                &["t1", "t2", "t3"],
                &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
                3_000,
            ),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000),
        ];
        let confirmed_at: HashMap<NftId, BlockNumber> = activities
            .iter()
            .enumerate()
            .map(|(index, a)| {
                (dataset.interner.nft(a.candidate.nft), BlockNumber(10 * (index as u64 + 1)))
            })
            .collect();
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);
        Snapshot::from_dense(
            SnapshotMeta { epoch: 3, watermark: BlockNumber(100) },
            &activities,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
        )
    }

    #[test]
    fn stats_and_point_lookups() {
        let snapshot = fixture();
        let stats = snapshot.stats();
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.watermark, BlockNumber(100));
        assert_eq!(stats.confirmed_activities, 4);
        assert_eq!(stats.suspect_nfts, 4);
        assert_eq!(stats.involved_accounts, 6);
        assert_eq!(stats.wash_volume, Wei::from_eth(14.0));
        assert!(stats.wash_volume_usd > 0.0);

        let meebits1 = NftId::new(Address::derived("meebits"), 1);
        let summary = snapshot.suspect(meebits1).expect("confirmed NFT");
        assert_eq!(summary.activities, 1);
        assert_eq!(summary.volume, Wei::from_eth(2.0));
        assert_eq!(summary.confirmed_at, BlockNumber(10));
        assert_eq!(snapshot.suspect(NftId::new(Address::derived("ghost"), 0)), None);
    }

    #[test]
    fn suspect_log_answers_block_windows() {
        let snapshot = fixture();
        // Confirmation blocks are 10, 20, 30, 40 in activity order.
        assert_eq!(snapshot.suspects_since(BlockNumber(0)).len(), 4);
        let since_25 = snapshot.suspects_since(BlockNumber(25));
        assert_eq!(since_25.len(), 2);
        assert!(since_25.windows(2).all(|w| w[0] < w[1]), "ascending NFT identity");
        assert_eq!(snapshot.suspects_since(BlockNumber(41)), Vec::<NftId>::new());
        assert_eq!(snapshot.suspects_between(BlockNumber(15), BlockNumber(30)).len(), 2);
        assert_eq!(snapshot.suspects_between(BlockNumber(0), BlockNumber(9)), Vec::<NftId>::new());
    }

    #[test]
    fn ranking_serves_top_movers() {
        let snapshot = fixture();
        let movers = snapshot.top_movers(2);
        assert_eq!(movers[0].1, Wei::from_eth(5.0), "the self-trade is the heaviest");
        assert_eq!(movers[0].0, NftId::new(Address::derived("loot"), 9));
        assert_eq!(movers[1].1, Wei::from_eth(4.0));
        assert_eq!(movers[1].0, NftId::new(Address::derived("meebits"), 2));
        assert_eq!(snapshot.top_movers(0), Vec::new());
        assert_eq!(snapshot.top_movers(99).len(), 4);
    }

    #[test]
    fn account_dossiers_follow_the_postings() {
        let snapshot = fixture();
        let s1 = snapshot.dossier(Address::derived("s1")).expect("serial trader");
        assert_eq!(s1.activities, 2);
        assert_eq!(s1.nfts.len(), 2);
        assert_eq!(s1.wash_volume, Wei::from_eth(6.0));
        assert_eq!(s1.collaborators, vec![Address::derived("s2")]);

        let solo = snapshot.dossier(Address::derived("solo")).expect("self trader");
        assert_eq!(solo.activities, 1);
        assert!(solo.collaborators.is_empty());

        assert_eq!(snapshot.dossier(Address::derived("bystander")), None);
    }

    #[test]
    fn collection_and_marketplace_rollups() {
        let snapshot = fixture();
        let collections = snapshot.collections();
        assert_eq!(collections.len(), 2);
        // loot carries 8 ETH (3 + 5) vs meebits' 6 ETH.
        assert_eq!(collections[0].collection, Address::derived("loot"));
        assert_eq!(collections[0].suspect_nfts, 2);
        assert!(collections[0].volume_usd > collections[1].volume_usd);
        assert!(collections[0].top_patterns[0].1 > 0);
        assert_eq!(snapshot.top_collections(1).len(), 1);

        let marketplaces = snapshot.marketplaces();
        assert_eq!(marketplaces.len(), 1);
        assert_eq!(marketplaces[0].name, "Off-market");
        assert_eq!(marketplaces[0].activities, 4);
        assert_eq!(marketplaces[0].share_of_marketplace_volume, None);
    }

    #[test]
    fn from_dense_rollups_equal_the_characterization_rows() {
        // `Snapshot::from_dense` derives its marketplace rollups itself
        // (`rollup_marketplaces`); the streaming/batch constructors instead
        // reuse `Characterization::per_marketplace`. This pins the two
        // computations to each other — on a fixture with real venue
        // attribution, not just the Off-market fallback — so Table II logic
        // cannot drift from the self-contained constructor unnoticed.
        let mut dataset = Dataset::default();
        let opensea = Address::derived("opensea");
        let mut activities = vec![
            activity(&mut dataset, "meebits", 1, &["s1", "s2"], &[(0, 1, 1.0), (1, 0, 3.0)], 1_000),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000),
        ];
        // Route the pair's heavier leg through a real marketplace.
        let market = dataset.interner.intern_market(opensea);
        activities[0].candidate.internal_edges[1].2.marketplace = Some(market);
        let mut directory = MarketplaceDirectory::new();
        directory.add(marketplace::MarketplaceInfo {
            name: "OpenSea".to_string(),
            contract: opensea,
            treasury: Address::derived("opensea-treasury"),
            escrow: None,
            fee_bps: 250,
            reward: None,
        });
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);

        let snapshot = Snapshot::from_dense(
            SnapshotMeta { epoch: 1, watermark: BlockNumber(50) },
            &activities,
            &dataset,
            &directory,
            &oracle,
            &HashMap::new(),
        );
        let characterization =
            washtrade::characterize::characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(snapshot.marketplaces(), &characterization.per_marketplace[..]);
        let names: Vec<&str> =
            snapshot.marketplaces().iter().map(|row| row.name.as_str()).collect();
        assert!(names.contains(&"OpenSea") && names.contains(&"Off-market"));
        assert_eq!(snapshot.stats().wash_volume_usd, characterization.total_volume_usd);
    }

    #[test]
    fn snapshots_are_cheap_handles_with_content_equality() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();

        let snapshot = fixture();
        let clone = snapshot.clone();
        assert!(Arc::ptr_eq(&snapshot.inner, &clone.inner), "clone is a refcount bump");
        assert_eq!(snapshot, clone);
        assert_eq!(Snapshot::empty(), Snapshot::default());
        assert_ne!(snapshot, Snapshot::empty());
    }

    #[test]
    fn delta_with_no_changes_shares_every_index() {
        let mut dataset = Dataset::default();
        let activities = vec![
            activity(&mut dataset, "meebits", 1, &["a", "b"], &[(0, 1, 1.0), (1, 0, 1.0)], 500),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 900),
        ];
        let activities = confirmed_order(&dataset, activities);
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);
        let confirmed_at: HashMap<NftId, BlockNumber> = activities
            .iter()
            .map(|a| (dataset.interner.nft(a.candidate.nft), BlockNumber(10)))
            .collect();

        let base = Snapshot::from_dense(
            SnapshotMeta { epoch: 1, watermark: BlockNumber(20) },
            &activities,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
        );
        let meta = SnapshotMeta { epoch: 2, watermark: BlockNumber(30) };
        let delta = Snapshot::delta_from_dense(
            &base,
            meta,
            &activities,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
            base.marketplaces().to_vec(),
            &BTreeSet::new(),
            None,
        );
        let full = Snapshot::from_dense_with_marketplaces(
            meta,
            &activities,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
            base.marketplaces().to_vec(),
            None,
        );
        assert_eq!(delta, full, "no-change delta is bit-identical to the full rebuild");
        let build = delta.build_stats();
        assert!(build.delta);
        assert_eq!(build.records_reused, build.records_total);
        assert_eq!(build.chunk_reuse_ratio(), 1.0);
        assert!(Arc::ptr_eq(&delta.inner.suspects, &base.inner.suspects), "index Arc-shared");
        assert!(Arc::ptr_eq(&delta.inner.ranking, &base.inner.ranking));
    }

    #[test]
    fn delta_rebuilds_only_changed_nfts_and_matches_the_full_build() {
        let mut dataset = Dataset::default();
        let epoch1 = vec![
            activity(&mut dataset, "meebits", 1, &["a", "b"], &[(0, 1, 1.0), (1, 0, 1.0)], 500),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 900),
        ];
        let epoch1 = confirmed_order(&dataset, epoch1);
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);
        let mut confirmed_at: HashMap<NftId, BlockNumber> = epoch1
            .iter()
            .map(|a| (dataset.interner.nft(a.candidate.nft), BlockNumber(10)))
            .collect();
        let base = Snapshot::from_dense(
            SnapshotMeta { epoch: 1, watermark: BlockNumber(20) },
            &epoch1,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
        );

        // Epoch 2: a brand-new suspect joins, the old ones are untouched.
        let mut epoch2 = epoch1.clone();
        epoch2.push(activity(
            &mut dataset,
            "punks",
            3,
            &["x", "y"],
            &[(0, 1, 2.0), (1, 0, 2.0)],
            2_000,
        ));
        let epoch2 = confirmed_order(&dataset, epoch2);
        let punk = NftId::new(Address::derived("punks"), 3);
        confirmed_at.insert(punk, BlockNumber(29));
        let changed: BTreeSet<NftId> = [punk].into_iter().collect();

        let meta = SnapshotMeta { epoch: 2, watermark: BlockNumber(30) };
        let delta = Snapshot::delta_from_dense(
            &base,
            meta,
            &epoch2,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
            Vec::new(),
            &changed,
            None,
        );
        let full = Snapshot::from_dense_with_marketplaces(
            meta,
            &epoch2,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
            Vec::new(),
            None,
        );
        assert_eq!(delta, full, "delta build is bit-identical to the full rebuild");
        let build = delta.build_stats();
        assert!(build.delta);
        assert_eq!(build.records_total, 3);
        assert_eq!(build.records_reused, 2, "both unchanged NFTs reused their segments");
        assert_eq!(build.segments_reused, 2);
        // The new suspect confirms at the tip, so the previous log is a
        // shared prefix and only a tail segment was appended.
        assert_eq!(delta.inner.suspect_log.shared_len_with(&base.inner.suspect_log), 2);
    }

    #[test]
    fn delta_handles_lost_and_changed_suspects() {
        let mut dataset = Dataset::default();
        let epoch1 = vec![
            activity(&mut dataset, "meebits", 1, &["a", "b"], &[(0, 1, 1.0), (1, 0, 1.0)], 500),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 900),
            activity(&mut dataset, "punks", 3, &["x", "y"], &[(0, 1, 2.0), (1, 0, 2.0)], 1_500),
        ];
        let epoch1 = confirmed_order(&dataset, epoch1);
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);
        let confirmed_at: HashMap<NftId, BlockNumber> = epoch1
            .iter()
            .map(|a| (dataset.interner.nft(a.candidate.nft), BlockNumber(10)))
            .collect();
        let base = Snapshot::from_dense(
            SnapshotMeta { epoch: 1, watermark: BlockNumber(20) },
            &epoch1,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
        );

        // Epoch 2: loot 9 loses its confirmation; punks 3 doubles up.
        let loot = NftId::new(Address::derived("loot"), 9);
        let punk = NftId::new(Address::derived("punks"), 3);
        let mut epoch2: Vec<DenseActivity> = epoch1
            .iter()
            .filter(|a| dataset.interner.nft(a.candidate.nft) != loot)
            .cloned()
            .collect();
        epoch2.push(activity(
            &mut dataset,
            "punks",
            3,
            &["x", "y"],
            &[(0, 1, 3.0), (1, 0, 3.0)],
            2_500,
        ));
        let epoch2 = confirmed_order(&dataset, epoch2);
        let mut confirmed_at2 = confirmed_at.clone();
        confirmed_at2.remove(&loot);
        let changed: BTreeSet<NftId> = [loot, punk].into_iter().collect();

        let meta = SnapshotMeta { epoch: 2, watermark: BlockNumber(30) };
        let delta = Snapshot::delta_from_dense(
            &base,
            meta,
            &epoch2,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at2,
            Vec::new(),
            &changed,
            None,
        );
        let full = Snapshot::from_dense_with_marketplaces(
            meta,
            &epoch2,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at2,
            Vec::new(),
            None,
        );
        assert_eq!(delta, full, "losses and re-confirmations still match the full rebuild");
        assert_eq!(delta.build_stats().records_reused, 1, "only meebits 1 was reusable");
        assert_eq!(delta.suspect(loot), None);
        assert_eq!(delta.suspect(punk).expect("still confirmed").activities, 2);
    }
}
