//! The epoch-versioned, immutable [`Snapshot`]: every index a read-side
//! query needs, frozen at one published epoch.
//!
//! A snapshot is built once per epoch — from the streaming analyzer's dense
//! layers ([`Snapshot::from_dense`]) or from a finished batch report
//! ([`Snapshot::from_report`]) — and then only ever read. Addresses and NFT
//! identities are resolved **once, at build time** (the serving boundary's
//! twin of the pipeline's intern-once/resolve-once rule); queries are index
//! lookups, never scans over analysis state:
//!
//! * account → suspect activities as a [`Postings`] list over the sorted
//!   involved-account table,
//! * a suspect log sorted by confirmation block, so block-windowed queries
//!   ([`Snapshot::suspects_since`], [`Snapshot::suspects_between`]) are a
//!   binary search plus a suffix walk,
//! * the full wash-volume ranking, so [`Snapshot::top_movers`] is a prefix
//!   copy,
//! * per-collection and per-marketplace rollups, pre-aggregated and
//!   pre-sorted.
//!
//! The struct is a cheap handle: all data lives behind one `Arc`, so cloning
//! a snapshot is a reference-count bump and a clone can cross threads freely
//! (`Snapshot: Send + Sync`). Two snapshots compare equal iff their contents
//! do — the equality the batch/stream parity test pins.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ethsim::{Address, BlockNumber, Timestamp, Wei};
use graphlib::{PatternCatalogue, PatternId};
use ids::Postings;
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};
use tokens::NftId;
use washtrade::characterize::{component_shape, MarketplaceWashRow};
use washtrade::dataset::{Dataset, MarketplaceVolume};
use washtrade::detect::{DenseActivity, MethodSet};
use washtrade::pipeline::AnalysisReport;

/// Version and coverage of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SnapshotMeta {
    /// Epoch number: how many ingestion epochs produced this state (0 for
    /// the empty snapshot a fresh publisher holds).
    pub epoch: u64,
    /// First block *not* covered by this snapshot.
    pub watermark: BlockNumber,
}

/// One confirmed wash-trading activity, fully resolved for serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// The manipulated NFT.
    pub nft: NftId,
    /// The colluding accounts, sorted by address.
    pub accounts: Vec<Address>,
    /// Total traded volume of the internal sales.
    pub volume: Wei,
    /// The same volume in USD at trade time.
    pub volume_usd: f64,
    /// Name of the marketplace carrying most of the volume; `None` for
    /// off-market activity.
    pub marketplace: Option<String>,
    /// Fig. 7 pattern id of the component's shape, if catalogued.
    pub pattern: Option<usize>,
    /// Timestamp of the first internal sale.
    pub first_trade: Timestamp,
    /// Timestamp of the last internal sale.
    pub last_trade: Timestamp,
    /// The detection methods that confirmed the activity.
    pub methods: MethodSet,
}

/// The served summary of one suspect (confirmed) NFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NftSummary {
    /// The NFT.
    pub nft: NftId,
    /// Confirmed activities on the NFT.
    pub activities: usize,
    /// Total confirmed wash volume on the NFT.
    pub volume: Wei,
    /// Last block of the epoch whose ingestion (most recently) confirmed the
    /// NFT; for batch-built snapshots, the last covered block.
    pub confirmed_at: BlockNumber,
}

/// Wash-trading rollup for one collection contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionRollup {
    /// The collection (ERC-721 contract).
    pub collection: Address,
    /// Distinct suspect NFTs in the collection.
    pub suspect_nfts: usize,
    /// Confirmed activities on the collection.
    pub activities: usize,
    /// Wash volume in ETH.
    pub volume_eth: f64,
    /// Wash volume in USD at trade time.
    pub volume_usd: f64,
    /// The most frequent Fig. 7 pattern ids, as `(pattern, occurrences)`,
    /// most frequent first (ties broken by lowest id), at most three.
    pub top_patterns: Vec<(usize, usize)>,
}

/// The answer to an account-dossier query: one account's wash-trading
/// involvement, derived from the account-postings index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountDossier {
    /// The account.
    pub account: Address,
    /// Confirmed activities the account participates in.
    pub activities: usize,
    /// Distinct NFTs those activities manipulate, ascending.
    pub nfts: Vec<NftId>,
    /// Total volume of those activities.
    pub wash_volume: Wei,
    /// Distinct co-participants across those activities, ascending.
    pub collaborators: Vec<Address>,
}

/// Aggregate counters of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SnapshotStats {
    /// Epoch number of the snapshot.
    pub epoch: u64,
    /// First block not covered.
    pub watermark: BlockNumber,
    /// Distinct NFTs with at least one compliant transfer.
    pub dataset_nfts: usize,
    /// Compliant transfers ingested.
    pub dataset_transfers: usize,
    /// Raw ERC-721-shaped logs scanned.
    pub raw_transfer_events: usize,
    /// Contracts passing the compliance probe.
    pub compliant_contracts: usize,
    /// Contracts failing the probe.
    pub non_compliant_contracts: usize,
    /// Confirmed wash-trading activities.
    pub confirmed_activities: usize,
    /// Distinct NFTs with at least one confirmed activity.
    pub suspect_nfts: usize,
    /// Distinct accounts involved in confirmed activities.
    pub involved_accounts: usize,
    /// Total confirmed wash volume.
    pub wash_volume: Wei,
    /// The same volume in ETH.
    pub wash_volume_eth: f64,
    /// The same volume in USD at trade time.
    pub wash_volume_usd: f64,
}

/// Dataset-level counters a snapshot reports; extracted from the dataset
/// (stream path) or the report (batch path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct DatasetTotals {
    nfts: usize,
    transfers: usize,
    raw_transfer_events: usize,
    compliant_contracts: usize,
    non_compliant_contracts: usize,
}

/// The owned snapshot state all clones share.
#[derive(Debug, PartialEq)]
struct SnapshotInner {
    stats: SnapshotStats,
    /// Confirmed activities in the pipeline's deterministic confirmed order.
    activities: Vec<ActivityRecord>,
    /// Involved accounts, sorted by address; the key space of
    /// `account_postings`.
    accounts: Vec<Address>,
    /// Account position → indexes into `activities`.
    account_postings: Postings<u32>,
    /// Suspect NFTs sorted by identity, for point lookups.
    suspects: Vec<NftSummary>,
    /// Suspect NFTs sorted by `(confirmed_at, nft)` — the block-windowed
    /// log.
    suspect_log: Vec<(BlockNumber, NftId)>,
    /// Suspect NFTs ranked by `(volume desc, nft asc)`.
    ranking: Vec<(NftId, Wei)>,
    /// Per-collection rollups, heaviest (USD) first.
    collections: Vec<CollectionRollup>,
    /// Per-marketplace rollups, heaviest (USD) first — the Table II shape.
    marketplaces: Vec<MarketplaceWashRow>,
}

/// An immutable, epoch-versioned view of the analysis results, shared by
/// reference count. See the [module docs](self) for the index inventory.
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

/// Content equality (not pointer equality): two snapshots are equal iff
/// every index and counter matches — what the batch/stream parity test
/// compares.
impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

impl Snapshot {
    /// The epoch-zero snapshot: nothing ingested, every query empty.
    pub fn empty() -> Snapshot {
        Snapshot::assemble(
            SnapshotMeta::default(),
            DatasetTotals::default(),
            Vec::new(),
            Vec::new(),
            &HashMap::new(),
        )
    }

    /// Build a snapshot from the streaming analyzer's dense layers: the
    /// confirmed activities still in dense-id form, the growing dataset
    /// (interner + columns + compliance verdicts), and the per-NFT
    /// confirmation blocks. Every id is resolved here, exactly once.
    pub fn from_dense(
        meta: SnapshotMeta,
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        confirmed_at: &HashMap<NftId, BlockNumber>,
    ) -> Snapshot {
        let records = Snapshot::dense_records(confirmed, dataset, directory, oracle);
        let table1 = dataset.marketplace_volumes(directory, oracle);
        let marketplaces = rollup_marketplaces(&records, &table1);
        Snapshot::assemble(meta, dataset_totals(dataset), records, marketplaces, confirmed_at)
    }

    /// [`Snapshot::from_dense`] with the per-marketplace rollup rows passed
    /// in instead of recomputed. The streaming analyzer publishes through
    /// this seam: its `Characterization::per_marketplace` rows are
    /// bit-identical to what [`Snapshot::from_dense`] would derive (the
    /// parity suite pins that), and reusing them avoids a second
    /// O(all-transfers) `marketplace_volumes` scan per epoch.
    pub fn from_dense_with_marketplaces(
        meta: SnapshotMeta,
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        confirmed_at: &HashMap<NftId, BlockNumber>,
        marketplaces: Vec<MarketplaceWashRow>,
    ) -> Snapshot {
        let records = Snapshot::dense_records(confirmed, dataset, directory, oracle);
        Snapshot::assemble(meta, dataset_totals(dataset), records, marketplaces, confirmed_at)
    }

    /// Resolve dense confirmed activities into serving records — the one
    /// place stream-side ids become addresses.
    fn dense_records(
        confirmed: &[DenseActivity],
        dataset: &Dataset,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
    ) -> Vec<ActivityRecord> {
        let catalogue = PatternCatalogue::paper();
        let interner = &dataset.interner;
        let records: Vec<ActivityRecord> = confirmed
            .iter()
            .map(|activity| {
                let candidate = &activity.candidate;
                let volume_usd = candidate
                    .internal_edges
                    .iter()
                    .map(|(_, _, edge)| {
                        oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0)
                    })
                    .sum();
                let marketplace = candidate
                    .dominant_marketplace(interner)
                    .and_then(|id| directory.by_contract(interner.market(id)))
                    .map(|info| info.name.clone());
                let shape = component_shape(candidate);
                ActivityRecord {
                    nft: interner.nft(candidate.nft),
                    accounts: candidate.accounts.iter().map(|&id| interner.address(id)).collect(),
                    volume: candidate.volume,
                    volume_usd,
                    marketplace,
                    pattern: catalogue
                        .classify(candidate.accounts.len(), &shape)
                        .map(|PatternId(id)| id),
                    first_trade: candidate.first_trade,
                    last_trade: candidate.last_trade,
                    methods: activity.methods,
                }
            })
            .collect();
        records
    }

    /// Build a snapshot from a finished batch [`AnalysisReport`] — the
    /// serving layer without a live analyzer. Confirmation blocks are not
    /// part of a batch report, so every suspect is dated to the last covered
    /// block (`meta.watermark - 1`); everything else is identical to the
    /// snapshot a stream publishes after ingesting the same chain.
    pub fn from_report(
        report: &AnalysisReport,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        meta: SnapshotMeta,
    ) -> Snapshot {
        let catalogue = PatternCatalogue::paper();
        let records: Vec<ActivityRecord> = report
            .detection
            .confirmed
            .iter()
            .map(|activity| {
                let candidate = &activity.candidate;
                let volume_usd = candidate
                    .internal_edges
                    .iter()
                    .map(|(_, _, edge)| {
                        oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0)
                    })
                    .sum();
                let marketplace = candidate
                    .dominant_marketplace()
                    .and_then(|contract| directory.by_contract(contract))
                    .map(|info| info.name.clone());
                ActivityRecord {
                    nft: candidate.nft,
                    accounts: candidate.accounts.clone(),
                    volume: candidate.volume,
                    volume_usd,
                    marketplace,
                    pattern: catalogue
                        .classify(candidate.accounts.len(), &candidate.shape())
                        .map(|PatternId(id)| id),
                    first_trade: candidate.first_trade,
                    last_trade: candidate.last_trade,
                    methods: activity.methods,
                }
            })
            .collect();
        let totals = DatasetTotals {
            nfts: report.dataset_nfts,
            transfers: report.dataset_transfers,
            raw_transfer_events: report.raw_transfer_events,
            compliant_contracts: report.compliant_contracts,
            non_compliant_contracts: report.non_compliant_contracts,
        };
        // The report's Table II rows are exactly the rollup this snapshot
        // would derive from `records` and `report.table1` (the parity suite
        // pins the equality) — reuse them instead of recomputing.
        let marketplaces = report.characterization.per_marketplace.clone();
        Snapshot::assemble(meta, totals, records, marketplaces, &HashMap::new())
    }

    /// Assemble every index from resolved activity records and pre-computed
    /// marketplace rollup rows. `confirmed_at` dates each suspect NFT;
    /// missing entries fall back to the last covered block. All
    /// floating-point accumulation walks `records` in their given
    /// (deterministic, confirmed) order, so dense- and report-built
    /// snapshots of the same state are bit-identical.
    fn assemble(
        meta: SnapshotMeta,
        totals: DatasetTotals,
        records: Vec<ActivityRecord>,
        marketplaces: Vec<MarketplaceWashRow>,
        confirmed_at: &HashMap<NftId, BlockNumber>,
    ) -> Snapshot {
        let _build_span = obs::span!("serve.snapshot.build_ns");
        let tip = BlockNumber(meta.watermark.0.saturating_sub(1));

        // Point-lookup table and its two derived orders (log, ranking).
        let mut by_nft: BTreeMap<NftId, NftSummary> = BTreeMap::new();
        for record in &records {
            let summary = by_nft.entry(record.nft).or_insert(NftSummary {
                nft: record.nft,
                activities: 0,
                volume: Wei::ZERO,
                confirmed_at: confirmed_at.get(&record.nft).copied().unwrap_or(tip),
            });
            summary.activities += 1;
            summary.volume += record.volume;
        }
        let suspects: Vec<NftSummary> = by_nft.into_values().collect();
        let mut suspect_log: Vec<(BlockNumber, NftId)> =
            suspects.iter().map(|summary| (summary.confirmed_at, summary.nft)).collect();
        suspect_log.sort_unstable();
        let mut ranking: Vec<(NftId, Wei)> =
            suspects.iter().map(|summary| (summary.nft, summary.volume)).collect();
        ranking.sort_unstable_by_key(|(nft, volume)| (std::cmp::Reverse(*volume), *nft));

        // Account postings: sorted involved-account table + CSR into the
        // activity list.
        let mut pairs: Vec<(Address, u32)> = records
            .iter()
            .enumerate()
            .flat_map(|(index, record)| {
                record.accounts.iter().map(move |account| (*account, index as u32))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut accounts: Vec<Address> = pairs.iter().map(|(account, _)| *account).collect();
        accounts.dedup();
        let indexed: Vec<(u32, u32)> = pairs
            .iter()
            .map(|(account, activity)| {
                let position = accounts.binary_search(account).expect("account is in the table");
                (position as u32, *activity)
            })
            .collect();
        let account_postings = Postings::from_pairs(indexed);

        // Collection rollups.
        struct CollectionAccumulator {
            nfts: std::collections::BTreeSet<NftId>,
            activities: usize,
            volume_eth: f64,
            volume_usd: f64,
            patterns: BTreeMap<usize, usize>,
        }
        let mut per_collection: BTreeMap<Address, CollectionAccumulator> = BTreeMap::new();
        for record in &records {
            let accumulator =
                per_collection.entry(record.nft.contract).or_insert(CollectionAccumulator {
                    nfts: std::collections::BTreeSet::new(),
                    activities: 0,
                    volume_eth: 0.0,
                    volume_usd: 0.0,
                    patterns: BTreeMap::new(),
                });
            accumulator.nfts.insert(record.nft);
            accumulator.activities += 1;
            accumulator.volume_eth += record.volume.to_eth();
            accumulator.volume_usd += record.volume_usd;
            if let Some(pattern) = record.pattern {
                *accumulator.patterns.entry(pattern).or_insert(0) += 1;
            }
        }
        let mut collections: Vec<CollectionRollup> = per_collection
            .into_iter()
            .map(|(collection, accumulator)| {
                let mut top_patterns: Vec<(usize, usize)> =
                    accumulator.patterns.into_iter().collect();
                top_patterns.sort_by_key(|(pattern, count)| (std::cmp::Reverse(*count), *pattern));
                top_patterns.truncate(3);
                CollectionRollup {
                    collection,
                    suspect_nfts: accumulator.nfts.len(),
                    activities: accumulator.activities,
                    volume_eth: accumulator.volume_eth,
                    volume_usd: accumulator.volume_usd,
                    top_patterns,
                }
            })
            .collect();
        collections.sort_by(|a, b| {
            b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.collection.cmp(&b.collection))
        });

        // Totals, accumulated in record order.
        let mut wash_volume = Wei::ZERO;
        let mut wash_volume_eth = 0.0;
        let mut wash_volume_usd = 0.0;
        for record in &records {
            wash_volume += record.volume;
            wash_volume_eth += record.volume.to_eth();
            wash_volume_usd += record.volume_usd;
        }
        let stats = SnapshotStats {
            epoch: meta.epoch,
            watermark: meta.watermark,
            dataset_nfts: totals.nfts,
            dataset_transfers: totals.transfers,
            raw_transfer_events: totals.raw_transfer_events,
            compliant_contracts: totals.compliant_contracts,
            non_compliant_contracts: totals.non_compliant_contracts,
            confirmed_activities: records.len(),
            suspect_nfts: suspects.len(),
            involved_accounts: accounts.len(),
            wash_volume,
            wash_volume_eth,
            wash_volume_usd,
        };

        Snapshot {
            inner: Arc::new(SnapshotInner {
                stats,
                activities: records,
                accounts,
                account_postings,
                suspects,
                suspect_log,
                ranking,
                collections,
                marketplaces,
            }),
        }
    }

    /// Epoch number of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.inner.stats.epoch
    }

    /// First block not covered by this snapshot.
    pub fn watermark(&self) -> BlockNumber {
        self.inner.stats.watermark
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SnapshotStats {
        self.inner.stats
    }

    /// The confirmed activities, fully resolved, in confirmed order.
    pub fn activities(&self) -> &[ActivityRecord] {
        &self.inner.activities
    }

    /// Accounts involved in at least one confirmed activity, ascending.
    pub fn accounts(&self) -> &[Address] {
        &self.inner.accounts
    }

    /// Every suspect NFT's summary, ascending by NFT identity.
    pub fn suspects(&self) -> &[NftSummary] {
        &self.inner.suspects
    }

    /// Point lookup: the summary of one suspect NFT, `None` if the NFT has
    /// no confirmed activity in this snapshot.
    pub fn suspect(&self, nft: NftId) -> Option<NftSummary> {
        self.inner
            .suspects
            .binary_search_by_key(&nft, |summary| summary.nft)
            .ok()
            .map(|index| self.inner.suspects[index])
    }

    /// Suspect NFTs whose latest confirmation happened at or after `block`,
    /// ascending by NFT identity: a binary search into the block-sorted
    /// suspect log plus a suffix walk — O(log n + answer), not O(all NFTs).
    pub fn suspects_since(&self, block: BlockNumber) -> Vec<NftId> {
        let log = &self.inner.suspect_log;
        let start = log.partition_point(|(confirmed_at, _)| *confirmed_at < block);
        let mut suspects: Vec<NftId> = log[start..].iter().map(|(_, nft)| *nft).collect();
        suspects.sort_unstable();
        suspects
    }

    /// Suspect NFTs whose latest confirmation lies in `first..=last`,
    /// ascending by NFT identity.
    pub fn suspects_between(&self, first: BlockNumber, last: BlockNumber) -> Vec<NftId> {
        let log = &self.inner.suspect_log;
        let start = log.partition_point(|(confirmed_at, _)| *confirmed_at < first);
        let end = log.partition_point(|(confirmed_at, _)| *confirmed_at <= last);
        let mut suspects: Vec<NftId> =
            log[start..end.max(start)].iter().map(|(_, nft)| *nft).collect();
        suspects.sort_unstable();
        suspects
    }

    /// The `n` suspect NFTs with the largest wash volume, descending (ties
    /// broken by NFT identity): a prefix of the precomputed ranking.
    pub fn top_movers(&self, n: usize) -> Vec<(NftId, Wei)> {
        self.inner.ranking.iter().take(n).copied().collect()
    }

    /// One account's wash-trading dossier, derived from the postings index;
    /// `None` if the account participates in no confirmed activity.
    pub fn dossier(&self, account: Address) -> Option<AccountDossier> {
        let position = self.inner.accounts.binary_search(&account).ok()?;
        let postings = self.inner.account_postings.get(position as u32);
        let mut nfts = Vec::new();
        let mut collaborators = Vec::new();
        let mut wash_volume = Wei::ZERO;
        for &index in postings {
            let record = &self.inner.activities[index as usize];
            nfts.push(record.nft);
            wash_volume += record.volume;
            collaborators.extend(record.accounts.iter().copied().filter(|&a| a != account));
        }
        nfts.sort_unstable();
        nfts.dedup();
        collaborators.sort_unstable();
        collaborators.dedup();
        Some(AccountDossier {
            account,
            activities: postings.len(),
            nfts,
            wash_volume,
            collaborators,
        })
    }

    /// Per-collection rollups, heaviest wash volume (USD) first.
    pub fn collections(&self) -> &[CollectionRollup] {
        &self.inner.collections
    }

    /// The `n` heaviest collections.
    pub fn top_collections(&self, n: usize) -> Vec<CollectionRollup> {
        self.inner.collections.iter().take(n).cloned().collect()
    }

    /// Per-marketplace wash rollups — the same rows, values and order as
    /// `Characterization::per_marketplace` (Table II).
    pub fn marketplaces(&self) -> &[MarketplaceWashRow] {
        &self.inner.marketplaces
    }
}

/// The snapshot's dataset counters, read off the growing dataset.
fn dataset_totals(dataset: &Dataset) -> DatasetTotals {
    DatasetTotals {
        nfts: dataset.nft_count(),
        transfers: dataset.transfer_count(),
        raw_transfer_events: dataset.raw_transfer_events,
        compliant_contracts: dataset.compliant_contracts.len(),
        non_compliant_contracts: dataset.non_compliant_contracts.len(),
    }
}

/// Derive the per-marketplace rollup rows from activity records plus the
/// Table I venue totals, mirroring the §V Table II computation exactly
/// (same grouping, accumulation order, share semantics and sort) — so the
/// derived rows equal `Characterization::per_marketplace` bit for bit, and
/// callers that already hold those rows may pass them instead
/// ([`Snapshot::from_dense_with_marketplaces`]).
fn rollup_marketplaces(
    records: &[ActivityRecord],
    table1: &[MarketplaceVolume],
) -> Vec<MarketplaceWashRow> {
    let market_totals: HashMap<&str, f64> =
        table1.iter().map(|row| (row.name.as_str(), row.volume_usd)).collect();
    struct MarketAccumulator {
        nfts: std::collections::BTreeSet<NftId>,
        activities: usize,
        volume_eth: f64,
        volume_usd: f64,
    }
    let mut per_market: HashMap<String, MarketAccumulator> = HashMap::new();
    for record in records {
        let name = record.marketplace.clone().unwrap_or_else(|| "Off-market".to_string());
        let accumulator = per_market.entry(name).or_insert(MarketAccumulator {
            nfts: std::collections::BTreeSet::new(),
            activities: 0,
            volume_eth: 0.0,
            volume_usd: 0.0,
        });
        accumulator.nfts.insert(record.nft);
        accumulator.activities += 1;
        accumulator.volume_eth += record.volume.to_eth();
        accumulator.volume_usd += record.volume_usd;
    }
    let mut marketplaces: Vec<MarketplaceWashRow> = per_market
        .iter()
        .map(|(name, accumulator)| MarketplaceWashRow {
            name: name.clone(),
            nfts: accumulator.nfts.len(),
            activities: accumulator.activities,
            volume_eth: accumulator.volume_eth,
            volume_usd: accumulator.volume_usd,
            share_of_marketplace_volume: market_totals.get(name.as_str()).map(|total| {
                if *total > 0.0 {
                    accumulator.volume_usd / total
                } else {
                    0.0
                }
            }),
        })
        .collect();
    marketplaces
        .sort_by(|a, b| b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.name.cmp(&b.name)));
    marketplaces
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Timestamp, TxHash};
    use ids::AccountId;
    use washtrade::refine::DenseCandidate;
    use washtrade::txgraph::DenseTradeEdge;

    /// Intern a small dense activity into `dataset`, mirroring the
    /// characterization test fixture: `edges` index into the sorted account
    /// list.
    fn activity(
        dataset: &mut Dataset,
        collection: &str,
        token: u64,
        accounts: &[&str],
        edges: &[(usize, usize, f64)],
        start_secs: u64,
    ) -> DenseActivity {
        let accounts: Vec<AccountId> = {
            let mut addresses: Vec<Address> =
                accounts.iter().map(|s| Address::derived(s)).collect();
            addresses.sort();
            addresses.into_iter().map(|a| dataset.interner.intern_account(a)).collect()
        };
        let nft = dataset.interner.intern_nft(NftId::new(Address::derived(collection), token));
        let internal_edges: Vec<(AccountId, AccountId, DenseTradeEdge)> = edges
            .iter()
            .enumerate()
            .map(|(i, (from, to, price))| {
                (
                    accounts[*from],
                    accounts[*to],
                    DenseTradeEdge {
                        timestamp: Timestamp::from_secs(start_secs + i as u64 * 3_600),
                        tx_hash: TxHash::hash_of(format!("{collection}-{token}-{i}").as_bytes()),
                        marketplace: None,
                        price: Wei::from_eth(*price),
                    },
                )
            })
            .collect();
        let first = internal_edges.iter().map(|(_, _, e)| e.timestamp).min().unwrap();
        let last = internal_edges.iter().map(|(_, _, e)| e.timestamp).max().unwrap();
        DenseActivity {
            candidate: DenseCandidate {
                nft,
                accounts,
                volume: internal_edges.iter().map(|(_, _, e)| e.price).sum(),
                first_trade: first,
                last_trade: last,
                internal_edges,
            },
            methods: MethodSet { zero_risk: true, ..MethodSet::default() },
        }
    }

    fn fixture() -> Snapshot {
        let mut dataset = Dataset::default();
        let activities = vec![
            activity(&mut dataset, "meebits", 1, &["s1", "s2"], &[(0, 1, 1.0), (1, 0, 1.0)], 1_000),
            activity(&mut dataset, "meebits", 2, &["s1", "s2"], &[(0, 1, 2.0), (1, 0, 2.0)], 2_000),
            activity(
                &mut dataset,
                "loot",
                7,
                &["t1", "t2", "t3"],
                &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
                3_000,
            ),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000),
        ];
        let confirmed_at: HashMap<NftId, BlockNumber> = activities
            .iter()
            .enumerate()
            .map(|(index, a)| {
                (dataset.interner.nft(a.candidate.nft), BlockNumber(10 * (index as u64 + 1)))
            })
            .collect();
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);
        Snapshot::from_dense(
            SnapshotMeta { epoch: 3, watermark: BlockNumber(100) },
            &activities,
            &dataset,
            &directory,
            &oracle,
            &confirmed_at,
        )
    }

    #[test]
    fn stats_and_point_lookups() {
        let snapshot = fixture();
        let stats = snapshot.stats();
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.watermark, BlockNumber(100));
        assert_eq!(stats.confirmed_activities, 4);
        assert_eq!(stats.suspect_nfts, 4);
        assert_eq!(stats.involved_accounts, 6);
        assert_eq!(stats.wash_volume, Wei::from_eth(14.0));
        assert!(stats.wash_volume_usd > 0.0);

        let meebits1 = NftId::new(Address::derived("meebits"), 1);
        let summary = snapshot.suspect(meebits1).expect("confirmed NFT");
        assert_eq!(summary.activities, 1);
        assert_eq!(summary.volume, Wei::from_eth(2.0));
        assert_eq!(summary.confirmed_at, BlockNumber(10));
        assert_eq!(snapshot.suspect(NftId::new(Address::derived("ghost"), 0)), None);
    }

    #[test]
    fn suspect_log_answers_block_windows() {
        let snapshot = fixture();
        // Confirmation blocks are 10, 20, 30, 40 in activity order.
        assert_eq!(snapshot.suspects_since(BlockNumber(0)).len(), 4);
        let since_25 = snapshot.suspects_since(BlockNumber(25));
        assert_eq!(since_25.len(), 2);
        assert!(since_25.windows(2).all(|w| w[0] < w[1]), "ascending NFT identity");
        assert_eq!(snapshot.suspects_since(BlockNumber(41)), Vec::<NftId>::new());
        assert_eq!(snapshot.suspects_between(BlockNumber(15), BlockNumber(30)).len(), 2);
        assert_eq!(snapshot.suspects_between(BlockNumber(0), BlockNumber(9)), Vec::<NftId>::new());
    }

    #[test]
    fn ranking_serves_top_movers() {
        let snapshot = fixture();
        let movers = snapshot.top_movers(2);
        assert_eq!(movers[0].1, Wei::from_eth(5.0), "the self-trade is the heaviest");
        assert_eq!(movers[0].0, NftId::new(Address::derived("loot"), 9));
        assert_eq!(movers[1].1, Wei::from_eth(4.0));
        assert_eq!(movers[1].0, NftId::new(Address::derived("meebits"), 2));
        assert_eq!(snapshot.top_movers(0), Vec::new());
        assert_eq!(snapshot.top_movers(99).len(), 4);
    }

    #[test]
    fn account_dossiers_follow_the_postings() {
        let snapshot = fixture();
        let s1 = snapshot.dossier(Address::derived("s1")).expect("serial trader");
        assert_eq!(s1.activities, 2);
        assert_eq!(s1.nfts.len(), 2);
        assert_eq!(s1.wash_volume, Wei::from_eth(6.0));
        assert_eq!(s1.collaborators, vec![Address::derived("s2")]);

        let solo = snapshot.dossier(Address::derived("solo")).expect("self trader");
        assert_eq!(solo.activities, 1);
        assert!(solo.collaborators.is_empty());

        assert_eq!(snapshot.dossier(Address::derived("bystander")), None);
    }

    #[test]
    fn collection_and_marketplace_rollups() {
        let snapshot = fixture();
        let collections = snapshot.collections();
        assert_eq!(collections.len(), 2);
        // loot carries 8 ETH (3 + 5) vs meebits' 6 ETH.
        assert_eq!(collections[0].collection, Address::derived("loot"));
        assert_eq!(collections[0].suspect_nfts, 2);
        assert!(collections[0].volume_usd > collections[1].volume_usd);
        assert!(!collections[0].top_patterns.is_empty());
        assert_eq!(snapshot.top_collections(1).len(), 1);

        let marketplaces = snapshot.marketplaces();
        assert_eq!(marketplaces.len(), 1);
        assert_eq!(marketplaces[0].name, "Off-market");
        assert_eq!(marketplaces[0].activities, 4);
        assert_eq!(marketplaces[0].share_of_marketplace_volume, None);
    }

    #[test]
    fn from_dense_rollups_equal_the_characterization_rows() {
        // `Snapshot::from_dense` derives its marketplace rollups itself
        // (`rollup_marketplaces`); the streaming/batch constructors instead
        // reuse `Characterization::per_marketplace`. This pins the two
        // computations to each other — on a fixture with real venue
        // attribution, not just the Off-market fallback — so Table II logic
        // cannot drift from the self-contained constructor unnoticed.
        let mut dataset = Dataset::default();
        let opensea = Address::derived("opensea");
        let mut activities = vec![
            activity(&mut dataset, "meebits", 1, &["s1", "s2"], &[(0, 1, 1.0), (1, 0, 3.0)], 1_000),
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000),
        ];
        // Route the pair's heavier leg through a real marketplace.
        let market = dataset.interner.intern_market(opensea);
        activities[0].candidate.internal_edges[1].2.marketplace = Some(market);
        let mut directory = MarketplaceDirectory::new();
        directory.add(marketplace::MarketplaceInfo {
            name: "OpenSea".to_string(),
            contract: opensea,
            treasury: Address::derived("opensea-treasury"),
            escrow: None,
            fee_bps: 250,
            reward: None,
        });
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1);

        let snapshot = Snapshot::from_dense(
            SnapshotMeta { epoch: 1, watermark: BlockNumber(50) },
            &activities,
            &dataset,
            &directory,
            &oracle,
            &HashMap::new(),
        );
        let characterization =
            washtrade::characterize::characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(snapshot.marketplaces(), &characterization.per_marketplace[..]);
        let names: Vec<&str> =
            snapshot.marketplaces().iter().map(|row| row.name.as_str()).collect();
        assert!(names.contains(&"OpenSea") && names.contains(&"Off-market"));
        assert_eq!(snapshot.stats().wash_volume_usd, characterization.total_volume_usd);
    }

    #[test]
    fn snapshots_are_cheap_handles_with_content_equality() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();

        let snapshot = fixture();
        let clone = snapshot.clone();
        assert!(Arc::ptr_eq(&snapshot.inner, &clone.inner), "clone is a refcount bump");
        assert_eq!(snapshot, clone);
        assert_eq!(Snapshot::empty(), Snapshot::default());
        assert_ne!(snapshot, Snapshot::empty());
    }
}
