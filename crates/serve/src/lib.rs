//! # washtrade-serve — the query-serving subsystem
//!
//! The analysis pipeline (batch in `washtrade`, incremental in
//! `washtrade-stream`) produces exactly what explorers, marketplaces and
//! auditors query millions of times a day: suspicious NFTs, collection and
//! marketplace rollups, account dossiers. This crate is the read side that
//! makes those answers fast *while ingestion keeps running*:
//!
//! * [`Snapshot`] — an immutable, epoch-versioned view with dense secondary
//!   indexes (account → suspect-activity postings, a block-sorted suspect
//!   log, the wash-volume ranking, collection/marketplace rollups), built
//!   once per epoch from the dense analysis layers or from a finished batch
//!   report; addresses resolve exactly once, at build time.
//! * [`SnapshotPublisher`] — the `Arc`-swapped publication slot between one
//!   writer and many readers. One `load` = one epoch; torn reads are
//!   impossible by construction.
//! * [`Query`] / [`Response`] / [`QueryService`] — the typed request path,
//!   with a sharded LRU response cache keyed by `(epoch, query)` so cache
//!   entries invalidate themselves the moment a new epoch is published.
//!
//! ```
//! use washtrade_serve::{Query, QueryService, Response, SnapshotPublisher};
//!
//! let publisher = SnapshotPublisher::new(); // the stream publishes into this
//! let service = QueryService::new(publisher.clone());
//! let served = service.query(&Query::TopMovers(10));
//! assert_eq!(served.epoch, 0); // nothing ingested yet
//! assert!(matches!(served.response, Response::TopMovers(ref movers) if movers.is_empty()));
//! ```
//!
//! The streaming analyzer publishes into a [`SnapshotPublisher`] after every
//! ingested epoch and routes its own `suspects_since` / `top_movers` query
//! helpers through the published indexes, so the stream and serve layers can
//! never disagree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunks;
pub mod publish;
pub mod query;
pub mod snapshot;

pub use cache::{CacheStats, ShardedLru};
pub use chunks::SegmentedVec;
pub use obs::MetricsSnapshot;
pub use publish::{RetentionPolicy, SnapshotPublisher};
pub use query::{CacheConfig, Query, QueryService, Response, Served, TrendPoint};
pub use snapshot::{
    AccountDossier, ActivityRecord, CollectionRollup, NftSummary, Snapshot, SnapshotBuildStats,
    SnapshotMeta, SnapshotStats, WashVolumes,
};
