//! The typed request/response surface: a [`Query`] goes in, a [`Served`]
//! response comes out, answered from exactly one published [`Snapshot`]
//! (whose epoch the response carries) with an optional trip through the
//! sharded LRU cache.
//!
//! The catalog covers the queries the paper's downstream consumers issue:
//! point status of an NFT, block-windowed suspect feeds, volume rankings,
//! account dossiers, collection and marketplace rollups, and the aggregate
//! stats line — plus the **longitudinal** surface retention enables:
//! [`Query::AsOf`] re-targets any point query at a retained historical
//! epoch, [`Query::SuspectDiff`] reports the suspect-set churn between two
//! epochs, and [`Query::WashVolumeTrend`] serves the wash-volume series
//! across every retained epoch. Historical answers are immutable, so their
//! cache entries are exempt from epoch invalidation and age out by LRU
//! only; asking for an evicted epoch yields a typed
//! [`Response::NotRetained`] miss, never a panic.

use ethsim::{Address, BlockNumber, Wei};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tokens::NftId;
use washtrade::characterize::MarketplaceWashRow;

use crate::cache::{CacheStats, ShardedLru};
use crate::publish::SnapshotPublisher;
use crate::snapshot::{AccountDossier, CollectionRollup, NftSummary, Snapshot, SnapshotStats};

/// A read-side request. `Hash`/`Eq` make queries directly usable as cache
/// keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// Aggregate counters of the current snapshot.
    Stats,
    /// Point lookup: is this NFT a confirmed suspect, and how bad?
    Nft(NftId),
    /// Suspects whose latest confirmation is at or after the block.
    SuspectsSince(BlockNumber),
    /// Suspects whose latest confirmation lies in the inclusive block range.
    SuspectsBetween(BlockNumber, BlockNumber),
    /// The `n` suspects with the largest wash volume.
    TopMovers(usize),
    /// One account's wash-trading dossier.
    Account(Address),
    /// The `n` collections with the most wash volume.
    TopCollections(usize),
    /// Per-marketplace wash rollups (the Table II rows).
    Marketplaces,
    /// Time travel: answer the inner query from the snapshot retained for
    /// `epoch` instead of the current one. The inner query must be a
    /// snapshot-level query (not `Metrics` or another historical variant).
    AsOf(u64, Box<Query>),
    /// Suspect-set churn between two retained epochs: which NFTs entered
    /// the suspect set going `from → to`, and which left it.
    SuspectDiff {
        /// Baseline epoch.
        from: u64,
        /// Comparison epoch.
        to: u64,
    },
    /// The wash-volume trend across every retained epoch, ascending.
    WashVolumeTrend,
    /// A snapshot of the process-wide runtime metrics (ingest, executor,
    /// stream, serve). Answered live, never cached.
    Metrics,
    /// The latest SLO verdicts from the health watchdog
    /// ([`obs::health::report`]). Live process state like [`Query::Metrics`]:
    /// answered at ask time, never cached.
    Health,
}

impl Query {
    /// Stable lowercase variant name, used as the metric-name suffix of the
    /// per-variant latency histograms (`serve.query.<variant>_ns`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Query::Stats => "stats",
            Query::Nft(_) => "nft",
            Query::SuspectsSince(_) => "suspects_since",
            Query::SuspectsBetween(_, _) => "suspects_between",
            Query::TopMovers(_) => "top_movers",
            Query::Account(_) => "account",
            Query::TopCollections(_) => "top_collections",
            Query::Marketplaces => "marketplaces",
            Query::AsOf(_, _) => "as_of",
            Query::SuspectDiff { .. } => "suspect_diff",
            Query::WashVolumeTrend => "wash_volume_trend",
            Query::Metrics => "metrics",
            Query::Health => "health",
        }
    }

    /// Whether this query addresses fixed historical epochs, making its
    /// answer immutable once computed. Historical cache entries are exempt
    /// from epoch invalidation (they can never go stale) and are reclaimed
    /// by LRU pressure only.
    pub fn is_historical(&self) -> bool {
        matches!(self, Query::AsOf(_, _) | Query::SuspectDiff { .. })
    }
}

/// One point of the [`Query::WashVolumeTrend`] series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// The retained epoch.
    pub epoch: u64,
    /// First block not covered by that epoch.
    pub watermark: BlockNumber,
    /// Confirmed activities at that epoch.
    pub confirmed_activities: usize,
    /// Distinct suspect NFTs at that epoch.
    pub suspect_nfts: usize,
    /// Confirmed wash volume in ETH at that epoch.
    pub wash_volume_eth: f64,
    /// Confirmed wash volume in USD at that epoch.
    pub wash_volume_usd: f64,
}

/// The payload of a served query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Query::Stats`].
    Stats(SnapshotStats),
    /// Answer to [`Query::Nft`]; `None` when the NFT is not a suspect.
    Nft(Option<NftSummary>),
    /// Answer to [`Query::SuspectsSince`] / [`Query::SuspectsBetween`].
    Suspects(Vec<NftId>),
    /// Answer to [`Query::TopMovers`].
    TopMovers(Vec<(NftId, Wei)>),
    /// Answer to [`Query::Account`]; `None` when the account is uninvolved.
    Account(Option<AccountDossier>),
    /// Answer to [`Query::TopCollections`].
    Collections(Vec<CollectionRollup>),
    /// Answer to [`Query::Marketplaces`].
    Marketplaces(Vec<MarketplaceWashRow>),
    /// Answer to [`Query::SuspectDiff`]: suspect-set churn `from → to`,
    /// both ascending by NFT identity.
    SuspectDiff {
        /// NFTs suspect at `to` but not at `from`.
        added: Vec<NftId>,
        /// NFTs suspect at `from` but not at `to`.
        removed: Vec<NftId>,
    },
    /// Answer to [`Query::WashVolumeTrend`]: one point per retained epoch,
    /// ascending by epoch.
    Trend(Vec<TrendPoint>),
    /// Typed miss for a historical query naming an epoch the publisher no
    /// longer (or never) retained.
    NotRetained {
        /// The epoch the query asked for.
        requested: u64,
        /// The latest published epoch.
        latest: u64,
        /// Every epoch currently answerable, ascending.
        retained: Vec<u64>,
    },
    /// The query cannot be answered in this position (e.g. nesting a
    /// historical or live-metrics query inside [`Query::AsOf`]).
    Unsupported(&'static str),
    /// Answer to [`Query::Metrics`]: the deterministic name-sorted metrics
    /// snapshot taken at answer time.
    Metrics(obs::MetricsSnapshot),
    /// Answer to [`Query::Health`]: the latest [`obs::HealthReport`] (empty
    /// before the first evaluation or while recording is off).
    Health(obs::HealthReport),
}

/// A response plus its provenance: the epoch of the snapshot that produced
/// it and whether it came from the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// Epoch of the snapshot the response was computed from. For historical
    /// queries this is the *addressed* epoch (for [`Query::SuspectDiff`],
    /// the later of the two).
    pub epoch: u64,
    /// Whether the response was served from the LRU cache.
    pub cached: bool,
    /// The payload.
    pub response: Response,
}

impl Snapshot {
    /// Answer one query from this snapshot. Every arm is an index lookup;
    /// nothing here touches analysis state. Queries that need the
    /// publisher's retained history ([`Query::AsOf`] and friends) cannot be
    /// answered by a lone snapshot and come back
    /// [`Response::Unsupported`] — route them through a [`QueryService`].
    pub fn answer(&self, query: &Query) -> Response {
        match query {
            Query::Stats => Response::Stats(self.stats()),
            Query::Nft(nft) => Response::Nft(self.suspect(*nft)),
            Query::SuspectsSince(block) => Response::Suspects(self.suspects_since(*block)),
            Query::SuspectsBetween(first, last) => {
                Response::Suspects(self.suspects_between(*first, *last))
            }
            Query::TopMovers(n) => Response::TopMovers(self.top_movers(*n)),
            Query::Account(account) => Response::Account(self.dossier(*account)),
            Query::TopCollections(n) => Response::Collections(self.top_collections(*n)),
            Query::Marketplaces => Response::Marketplaces(self.marketplaces().to_vec()),
            Query::AsOf(_, _) | Query::SuspectDiff { .. } | Query::WashVolumeTrend => {
                Response::Unsupported("historical queries need a QueryService with retention")
            }
            Query::Metrics => Response::Metrics(obs::snapshot()),
            Query::Health => Response::Health(obs::health::report()),
        }
    }

    /// The trend-series point this snapshot contributes.
    fn trend_point(&self) -> TrendPoint {
        let stats = self.stats();
        TrendPoint {
            epoch: stats.epoch,
            watermark: stats.watermark,
            confirmed_activities: stats.confirmed_activities,
            suspect_nfts: stats.suspect_nfts,
            wash_volume_eth: stats.wash_volume_eth,
            wash_volume_usd: stats.wash_volume_usd,
        }
    }
}

/// Cache sizing for a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independent shards (locks).
    pub shards: usize,
    /// Entries per shard; `0` disables caching.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { shards: 16, capacity_per_shard: 64 }
    }
}

impl CacheConfig {
    /// A configuration with caching turned off (benchmark baseline).
    pub fn disabled() -> Self {
        CacheConfig { shards: 1, capacity_per_shard: 0 }
    }
}

/// The concurrent query front end: loads the current snapshot from the
/// publisher, consults the sharded LRU, computes on miss. Clones share the
/// publisher slot *and* the cache, so one service can be handed to any
/// number of reader threads.
#[derive(Debug, Clone)]
pub struct QueryService {
    publisher: SnapshotPublisher,
    cache: Arc<ShardedLru>,
}

impl QueryService {
    /// A service over `publisher` with the default cache.
    pub fn new(publisher: SnapshotPublisher) -> Self {
        QueryService::with_cache(publisher, CacheConfig::default())
    }

    /// A service with explicit cache sizing. The cache is registered with
    /// the publisher so [`SnapshotPublisher::cache_stats`] sees it for as
    /// long as this service (or a clone) is alive.
    pub fn with_cache(publisher: SnapshotPublisher, config: CacheConfig) -> Self {
        let cache = Arc::new(ShardedLru::new(config.shards, config.capacity_per_shard));
        publisher.register_cache(&cache);
        QueryService { publisher, cache }
    }

    /// Serve one query. Snapshot-level queries answer from the currently
    /// published snapshot; historical queries resolve their epochs through
    /// the publisher's retained history. The returned epoch identifies the
    /// snapshot that answered; the response is internally consistent with
    /// it by construction (one `load`, one snapshot, one answer — and cache
    /// entries only ever match their own epoch).
    ///
    /// Each call records its end-to-end latency into the per-variant
    /// `serve.query.<variant>_ns` histogram, bumps `serve.query.count`, and
    /// — for current-snapshot queries — records `serve.query.epoch_lag`:
    /// how many epochs the snapshot that answered trails the latest
    /// published one (non-zero only when a publish raced this query).
    pub fn query(&self, query: &Query) -> Served {
        let timed = obs::recording().then(std::time::Instant::now);
        let served = self.answer_via_cache(query);
        if let Some(started) = timed {
            latency_histogram(query).get().record_duration(started.elapsed());
            obs::counter!("serve.query.count");
            // Historical queries address old epochs on purpose; recording
            // their distance as "lag" would drown the real publish-race
            // signal.
            if !query.is_historical() {
                let lag = self.publisher.current_epoch().saturating_sub(served.epoch);
                obs::histogram!("serve.query.epoch_lag", lag);
            }
        }
        served
    }

    fn answer_via_cache(&self, query: &Query) -> Served {
        match query {
            // Metrics and health are live process state, not snapshot state:
            // caching either would freeze the counters/verdicts they exist
            // to report.
            Query::Metrics | Query::Health => {
                let snapshot = self.publisher.load();
                Served { epoch: snapshot.epoch(), cached: false, response: snapshot.answer(query) }
            }
            Query::AsOf(epoch, inner) => self.answer_as_of(*epoch, inner, query),
            Query::SuspectDiff { from, to } => self.answer_diff(*from, *to, query),
            Query::WashVolumeTrend => self.answer_trend(query),
            _ => {
                let snapshot = self.publisher.load();
                let epoch = snapshot.epoch();
                if let Some(response) = self.cache.get(epoch, query) {
                    return Served { epoch, cached: true, response };
                }
                let response = snapshot.answer(query);
                self.cache.insert(epoch, query.clone(), response.clone());
                Served { epoch, cached: false, response }
            }
        }
    }

    /// Answer `inner` from the snapshot retained for `epoch`. Cached under
    /// the *historical* epoch: the answer can never go stale, so the entry
    /// keeps serving even after the epoch itself is evicted from retention.
    fn answer_as_of(&self, epoch: u64, inner: &Query, key: &Query) -> Served {
        if matches!(
            inner,
            Query::Metrics
                | Query::Health
                | Query::AsOf(_, _)
                | Query::SuspectDiff { .. }
                | Query::WashVolumeTrend
        ) {
            return Served {
                epoch: self.publisher.current_epoch(),
                cached: false,
                response: Response::Unsupported(
                    "AsOf wraps snapshot-level queries only (not Metrics/Health or historical \
                     variants)",
                ),
            };
        }
        if let Some(response) = self.cache.get(epoch, key) {
            return Served { epoch, cached: true, response };
        }
        match self.publisher.at_epoch(epoch) {
            Some(snapshot) => {
                let response = snapshot.answer(inner);
                self.cache.insert(epoch, key.clone(), response.clone());
                Served { epoch, cached: false, response }
            }
            None => self.not_retained(epoch),
        }
    }

    /// Suspect-set churn between two retained epochs, cached under the
    /// later epoch.
    fn answer_diff(&self, from: u64, to: u64, key: &Query) -> Served {
        let key_epoch = from.max(to);
        if let Some(response) = self.cache.get(key_epoch, key) {
            return Served { epoch: key_epoch, cached: true, response };
        }
        let Some(base) = self.publisher.at_epoch(from) else {
            return self.not_retained(from);
        };
        let Some(target) = self.publisher.at_epoch(to) else {
            return self.not_retained(to);
        };
        let response = suspect_diff(&base, &target);
        self.cache.insert(key_epoch, key.clone(), response.clone());
        Served { epoch: key_epoch, cached: false, response }
    }

    /// The wash-volume series over every retained epoch. Cached under the
    /// *current* epoch (not historical): each publish extends the series,
    /// so epoch invalidation is exactly the right freshness rule.
    fn answer_trend(&self, key: &Query) -> Served {
        let epoch = self.publisher.epoch();
        if let Some(response) = self.cache.get(epoch, key) {
            return Served { epoch, cached: true, response };
        }
        let points: Vec<TrendPoint> = self
            .publisher
            .retained_epochs()
            .into_iter()
            .filter_map(|retained| self.publisher.at_epoch(retained))
            .map(|snapshot| snapshot.trend_point())
            .collect();
        let response = Response::Trend(points);
        self.cache.insert(epoch, key.clone(), response.clone());
        Served { epoch, cached: false, response }
    }

    /// The typed miss for an epoch outside the retained set; never cached
    /// (a *future* epoch will eventually be published and must not be
    /// answered by a stale miss).
    fn not_retained(&self, requested: u64) -> Served {
        let latest = self.publisher.current_epoch();
        Served {
            epoch: latest,
            cached: false,
            response: Response::NotRetained {
                requested,
                latest,
                retained: self.publisher.retained_epochs(),
            },
        }
    }

    /// The snapshot the next query would be answered from.
    pub fn snapshot(&self) -> Snapshot {
        self.publisher.load()
    }

    /// The publisher this service reads from.
    pub fn publisher(&self) -> &SnapshotPublisher {
        &self.publisher
    }

    /// Cache hit/miss counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Suspect-set churn between two snapshots: a linear merge over the two
/// identity-sorted suspect tables.
fn suspect_diff(base: &Snapshot, target: &Snapshot) -> Response {
    let from = base.suspects();
    let to = target.suspects();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < from.len() || j < to.len() {
        match (from.get(i), to.get(j)) {
            (Some(old), Some(new)) if old.nft == new.nft => {
                i += 1;
                j += 1;
            }
            (Some(old), Some(new)) if old.nft < new.nft => {
                removed.push(old.nft);
                i += 1;
            }
            (Some(_), Some(new)) => {
                added.push(new.nft);
                j += 1;
            }
            (Some(old), None) => {
                removed.push(old.nft);
                i += 1;
            }
            (None, Some(new)) => {
                added.push(new.nft);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    Response::SuspectDiff { added, removed }
}

/// The per-variant latency histogram for `query`, resolved through static
/// lazy handles so the hot path never formats a metric name or takes the
/// registry lock after first use.
fn latency_histogram(query: &Query) -> &'static obs::LazyHistogram {
    static STATS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.stats_ns");
    static NFT: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.nft_ns");
    static SUSPECTS_SINCE: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.suspects_since_ns");
    static SUSPECTS_BETWEEN: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.suspects_between_ns");
    static TOP_MOVERS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.top_movers_ns");
    static ACCOUNT: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.account_ns");
    static TOP_COLLECTIONS: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.top_collections_ns");
    static MARKETPLACES: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.marketplaces_ns");
    static AS_OF: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.as_of_ns");
    static SUSPECT_DIFF: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.suspect_diff_ns");
    static WASH_VOLUME_TREND: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.wash_volume_trend_ns");
    static METRICS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.metrics_ns");
    static HEALTH: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.health_ns");
    match query {
        Query::Stats => &STATS,
        Query::Nft(_) => &NFT,
        Query::SuspectsSince(_) => &SUSPECTS_SINCE,
        Query::SuspectsBetween(_, _) => &SUSPECTS_BETWEEN,
        Query::TopMovers(_) => &TOP_MOVERS,
        Query::Account(_) => &ACCOUNT,
        Query::TopCollections(_) => &TOP_COLLECTIONS,
        Query::Marketplaces => &MARKETPLACES,
        Query::AsOf(_, _) => &AS_OF,
        Query::SuspectDiff { .. } => &SUSPECT_DIFF,
        Query::WashVolumeTrend => &WASH_VOLUME_TREND,
        Query::Metrics => &METRICS,
        Query::Health => &HEALTH,
    }
}
