//! The typed request/response surface: a [`Query`] goes in, a [`Served`]
//! response comes out, answered from exactly one published [`Snapshot`]
//! (whose epoch the response carries) with an optional trip through the
//! sharded LRU cache.
//!
//! The catalog covers the queries the paper's downstream consumers issue:
//! point status of an NFT, block-windowed suspect feeds, volume rankings,
//! account dossiers, collection and marketplace rollups, and the aggregate
//! stats line.

use ethsim::{Address, BlockNumber, Wei};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tokens::NftId;
use washtrade::characterize::MarketplaceWashRow;

use crate::cache::{CacheStats, ShardedLru};
use crate::publish::SnapshotPublisher;
use crate::snapshot::{AccountDossier, CollectionRollup, NftSummary, Snapshot, SnapshotStats};

/// A read-side request. `Hash`/`Eq` make queries directly usable as cache
/// keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// Aggregate counters of the current snapshot.
    Stats,
    /// Point lookup: is this NFT a confirmed suspect, and how bad?
    Nft(NftId),
    /// Suspects whose latest confirmation is at or after the block.
    SuspectsSince(BlockNumber),
    /// Suspects whose latest confirmation lies in the inclusive block range.
    SuspectsBetween(BlockNumber, BlockNumber),
    /// The `n` suspects with the largest wash volume.
    TopMovers(usize),
    /// One account's wash-trading dossier.
    Account(Address),
    /// The `n` collections with the most wash volume.
    TopCollections(usize),
    /// Per-marketplace wash rollups (the Table II rows).
    Marketplaces,
    /// A snapshot of the process-wide runtime metrics (ingest, executor,
    /// stream, serve). Answered live, never cached.
    Metrics,
}

impl Query {
    /// Stable lowercase variant name, used as the metric-name suffix of the
    /// per-variant latency histograms (`serve.query.<variant>_ns`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Query::Stats => "stats",
            Query::Nft(_) => "nft",
            Query::SuspectsSince(_) => "suspects_since",
            Query::SuspectsBetween(_, _) => "suspects_between",
            Query::TopMovers(_) => "top_movers",
            Query::Account(_) => "account",
            Query::TopCollections(_) => "top_collections",
            Query::Marketplaces => "marketplaces",
            Query::Metrics => "metrics",
        }
    }
}

/// The payload of a served query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Query::Stats`].
    Stats(SnapshotStats),
    /// Answer to [`Query::Nft`]; `None` when the NFT is not a suspect.
    Nft(Option<NftSummary>),
    /// Answer to [`Query::SuspectsSince`] / [`Query::SuspectsBetween`].
    Suspects(Vec<NftId>),
    /// Answer to [`Query::TopMovers`].
    TopMovers(Vec<(NftId, Wei)>),
    /// Answer to [`Query::Account`]; `None` when the account is uninvolved.
    Account(Option<AccountDossier>),
    /// Answer to [`Query::TopCollections`].
    Collections(Vec<CollectionRollup>),
    /// Answer to [`Query::Marketplaces`].
    Marketplaces(Vec<MarketplaceWashRow>),
    /// Answer to [`Query::Metrics`]: the deterministic name-sorted metrics
    /// snapshot taken at answer time.
    Metrics(obs::MetricsSnapshot),
}

/// A response plus its provenance: the epoch of the snapshot that produced
/// it and whether it came from the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// Epoch of the snapshot the response was computed from.
    pub epoch: u64,
    /// Whether the response was served from the LRU cache.
    pub cached: bool,
    /// The payload.
    pub response: Response,
}

impl Snapshot {
    /// Answer one query from this snapshot. Every arm is an index lookup;
    /// nothing here touches analysis state.
    pub fn answer(&self, query: &Query) -> Response {
        match query {
            Query::Stats => Response::Stats(self.stats()),
            Query::Nft(nft) => Response::Nft(self.suspect(*nft)),
            Query::SuspectsSince(block) => Response::Suspects(self.suspects_since(*block)),
            Query::SuspectsBetween(first, last) => {
                Response::Suspects(self.suspects_between(*first, *last))
            }
            Query::TopMovers(n) => Response::TopMovers(self.top_movers(*n)),
            Query::Account(account) => Response::Account(self.dossier(*account)),
            Query::TopCollections(n) => Response::Collections(self.top_collections(*n)),
            Query::Marketplaces => Response::Marketplaces(self.marketplaces().to_vec()),
            Query::Metrics => Response::Metrics(obs::snapshot()),
        }
    }
}

/// Cache sizing for a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independent shards (locks).
    pub shards: usize,
    /// Entries per shard; `0` disables caching.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { shards: 16, capacity_per_shard: 64 }
    }
}

impl CacheConfig {
    /// A configuration with caching turned off (benchmark baseline).
    pub fn disabled() -> Self {
        CacheConfig { shards: 1, capacity_per_shard: 0 }
    }
}

/// The concurrent query front end: loads the current snapshot from the
/// publisher, consults the sharded LRU, computes on miss. Clones share the
/// publisher slot *and* the cache, so one service can be handed to any
/// number of reader threads.
#[derive(Debug, Clone)]
pub struct QueryService {
    publisher: SnapshotPublisher,
    cache: Arc<ShardedLru>,
}

impl QueryService {
    /// A service over `publisher` with the default cache.
    pub fn new(publisher: SnapshotPublisher) -> Self {
        QueryService::with_cache(publisher, CacheConfig::default())
    }

    /// A service with explicit cache sizing. The cache is registered with
    /// the publisher so [`SnapshotPublisher::cache_stats`] sees it for as
    /// long as this service (or a clone) is alive.
    pub fn with_cache(publisher: SnapshotPublisher, config: CacheConfig) -> Self {
        let cache = Arc::new(ShardedLru::new(config.shards, config.capacity_per_shard));
        publisher.register_cache(&cache);
        QueryService { publisher, cache }
    }

    /// Serve one query from the currently published snapshot. The returned
    /// epoch identifies that snapshot; the response is internally consistent
    /// with it by construction (one `load`, one snapshot, one answer — and
    /// cache entries only ever match their own epoch).
    ///
    /// Each call records its end-to-end latency into the per-variant
    /// `serve.query.<variant>_ns` histogram, bumps `serve.query.count`, and
    /// records `serve.query.epoch_lag` — how many epochs the snapshot that
    /// answered trails the latest published one (non-zero only when a
    /// publish raced this query).
    pub fn query(&self, query: &Query) -> Served {
        let timed = obs::recording().then(std::time::Instant::now);
        let served = self.answer_via_cache(query);
        if let Some(started) = timed {
            latency_histogram(query).get().record_duration(started.elapsed());
            obs::counter!("serve.query.count");
            let lag = self.publisher.current_epoch().saturating_sub(served.epoch);
            obs::histogram!("serve.query.epoch_lag", lag);
        }
        served
    }

    fn answer_via_cache(&self, query: &Query) -> Served {
        let snapshot = self.publisher.load();
        let epoch = snapshot.epoch();
        // Metrics are live process state, not snapshot state: caching one
        // would freeze the counters it exists to report.
        if matches!(query, Query::Metrics) {
            return Served { epoch, cached: false, response: snapshot.answer(query) };
        }
        if let Some(response) = self.cache.get(epoch, query) {
            return Served { epoch, cached: true, response };
        }
        let response = snapshot.answer(query);
        self.cache.insert(epoch, query.clone(), response.clone());
        Served { epoch, cached: false, response }
    }

    /// The snapshot the next query would be answered from.
    pub fn snapshot(&self) -> Snapshot {
        self.publisher.load()
    }

    /// The publisher this service reads from.
    pub fn publisher(&self) -> &SnapshotPublisher {
        &self.publisher
    }

    /// Cache hit/miss counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The per-variant latency histogram for `query`, resolved through static
/// lazy handles so the hot path never formats a metric name or takes the
/// registry lock after first use.
fn latency_histogram(query: &Query) -> &'static obs::LazyHistogram {
    static STATS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.stats_ns");
    static NFT: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.nft_ns");
    static SUSPECTS_SINCE: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.suspects_since_ns");
    static SUSPECTS_BETWEEN: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.suspects_between_ns");
    static TOP_MOVERS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.top_movers_ns");
    static ACCOUNT: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.account_ns");
    static TOP_COLLECTIONS: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.top_collections_ns");
    static MARKETPLACES: obs::LazyHistogram =
        obs::LazyHistogram::new("serve.query.marketplaces_ns");
    static METRICS: obs::LazyHistogram = obs::LazyHistogram::new("serve.query.metrics_ns");
    match query {
        Query::Stats => &STATS,
        Query::Nft(_) => &NFT,
        Query::SuspectsSince(_) => &SUSPECTS_SINCE,
        Query::SuspectsBetween(_, _) => &SUSPECTS_BETWEEN,
        Query::TopMovers(_) => &TOP_MOVERS,
        Query::Account(_) => &ACCOUNT,
        Query::TopCollections(_) => &TOP_COLLECTIONS,
        Query::Marketplaces => &MARKETPLACES,
        Query::Metrics => &METRICS,
    }
}
