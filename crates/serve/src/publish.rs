//! The publication seam between ingestion and the concurrent read path:
//! a single atomic slot holding the current [`Snapshot`].
//!
//! Writers (the streaming analyzer, once per ingested epoch) swap a freshly
//! built snapshot in; readers grab a handle with [`SnapshotPublisher::load`]
//! and then work off that immutable snapshot for as long as they like —
//! publication never blocks on readers, readers never observe a snapshot
//! mid-swap, and a reader holding an old snapshot simply keeps the old
//! epoch's `Arc` alive until it drops the handle. That is the whole
//! isolation story: one `load` = one epoch, torn reads are impossible by
//! construction.
//!
//! The lock is held only for the duration of an `Arc` clone or swap (no
//! index is ever built or read under it), so the read path scales with
//! reader threads.
//!
//! The publisher is also the runtime aggregation point for the read side's
//! operational state: query services register their response caches here
//! (weakly — a dropped service unregisters itself by expiring), so
//! [`SnapshotPublisher::cache_stats`] answers "how is the cache tier doing"
//! without touching any individual service, and
//! [`SnapshotPublisher::current_epoch`] reads the published epoch from a
//! single atomic instead of cloning the snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

use crate::cache::{CacheStats, ShardedLru};
use crate::snapshot::Snapshot;

/// The shared, cloneable publication slot. Clones address the same slot:
/// hand one to the ingestion side and as many as needed to readers.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPublisher {
    slot: Arc<RwLock<Snapshot>>,
    /// Epoch of the snapshot in `slot`, mirrored into an atomic so epoch
    /// probes (lag measurement, monitoring) cost one relaxed load instead of
    /// a lock + `Arc` clone.
    epoch_cell: Arc<AtomicU64>,
    /// Caches registered by the query services reading from this slot, held
    /// weakly: a dropped service's cache simply stops resolving and is
    /// pruned on the next [`SnapshotPublisher::cache_stats`] call.
    caches: Arc<Mutex<Vec<Weak<ShardedLru>>>>,
}

impl SnapshotPublisher {
    /// A fresh publisher holding the empty epoch-zero snapshot.
    pub fn new() -> Self {
        SnapshotPublisher::default()
    }

    /// A publisher pre-loaded with `snapshot` (e.g. one rebuilt from a batch
    /// report, to serve while a stream catches up).
    pub fn with_initial(snapshot: Snapshot) -> Self {
        let epoch = snapshot.epoch();
        SnapshotPublisher {
            slot: Arc::new(RwLock::new(snapshot)),
            epoch_cell: Arc::new(AtomicU64::new(epoch)),
            caches: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The current snapshot: a cheap `Arc` clone taken under the read lock.
    /// The returned handle stays valid (and unchanged) however many epochs
    /// are published afterwards.
    pub fn load(&self) -> Snapshot {
        self.slot.read().expect("publisher slot poisoned").clone()
    }

    /// Atomically replace the current snapshot. Readers that loaded before
    /// this call keep their old snapshot; every later `load` sees the new
    /// one.
    pub fn publish(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch();
        *self.slot.write().expect("publisher slot poisoned") = snapshot;
        self.epoch_cell.store(epoch, Ordering::Relaxed);
        obs::counter!("serve.publisher.publishes");
        obs::gauge!("serve.publisher.epoch", epoch as i64);
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Epoch of the currently published snapshot, from the mirrored atomic —
    /// no lock, no snapshot clone. May trail [`SnapshotPublisher::epoch`] by
    /// one publish for a concurrent reader (the mirror is updated after the
    /// swap), which is exactly the window epoch-lag metrics exist to see.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_cell.load(Ordering::Relaxed)
    }

    /// Register a query service's response cache for runtime stats
    /// aggregation. Held weakly; dropping the cache unregisters it.
    pub fn register_cache(&self, cache: &Arc<ShardedLru>) {
        self.caches.lock().expect("publisher cache list poisoned").push(Arc::downgrade(cache));
    }

    /// Aggregate hit/miss/eviction counters across every live registered
    /// cache (services whose caches were dropped are pruned here).
    pub fn cache_stats(&self) -> CacheStats {
        let mut caches = self.caches.lock().expect("publisher cache list poisoned");
        caches.retain(|weak| weak.strong_count() > 0);
        caches
            .iter()
            .filter_map(Weak::upgrade)
            .fold(CacheStats::default(), |acc, cache| acc.merge(&cache.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CacheConfig, Query, QueryService};

    #[test]
    fn load_returns_a_stable_handle_across_publishes() {
        let publisher = SnapshotPublisher::new();
        assert_eq!(publisher.epoch(), 0);
        let before = publisher.load();

        let next = Snapshot::empty();
        publisher.publish(next.clone());
        // The old handle still reads epoch 0 state; the slot serves the new
        // snapshot (here also epoch 0 — identity is what matters).
        assert_eq!(before.epoch(), 0);
        assert_eq!(publisher.load(), next);

        // Clones of the publisher address the same slot.
        let clone = publisher.clone();
        clone.publish(Snapshot::empty());
        assert_eq!(publisher.load(), clone.load());
        assert_eq!(publisher.current_epoch(), publisher.epoch());
    }

    #[test]
    fn registered_caches_report_through_the_publisher() {
        let publisher = SnapshotPublisher::new();
        let service_a = QueryService::with_cache(publisher.clone(), CacheConfig::default());
        let service_b = QueryService::with_cache(publisher.clone(), CacheConfig::default());

        // One miss then one hit on A, one miss on B.
        service_a.query(&Query::Stats);
        service_a.query(&Query::Stats);
        service_b.query(&Query::Stats);
        let stats = publisher.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));

        // Dropping a service unregisters its cache: its counters vanish from
        // the aggregate.
        drop(service_b);
        let stats = publisher.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
