//! The publication seam between ingestion and the concurrent read path:
//! a single atomic slot holding the current [`Snapshot`].
//!
//! Writers (the streaming analyzer, once per ingested epoch) swap a freshly
//! built snapshot in; readers grab a handle with [`SnapshotPublisher::load`]
//! and then work off that immutable snapshot for as long as they like —
//! publication never blocks on readers, readers never observe a snapshot
//! mid-swap, and a reader holding an old snapshot simply keeps the old
//! epoch's `Arc` alive until it drops the handle. That is the whole
//! isolation story: one `load` = one epoch, torn reads are impossible by
//! construction.
//!
//! The lock is held only for the duration of an `Arc` clone or swap (no
//! index is ever built or read under it), so the read path scales with
//! reader threads.

use std::sync::{Arc, RwLock};

use crate::snapshot::Snapshot;

/// The shared, cloneable publication slot. Clones address the same slot:
/// hand one to the ingestion side and as many as needed to readers.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPublisher {
    slot: Arc<RwLock<Snapshot>>,
}

impl SnapshotPublisher {
    /// A fresh publisher holding the empty epoch-zero snapshot.
    pub fn new() -> Self {
        SnapshotPublisher::default()
    }

    /// A publisher pre-loaded with `snapshot` (e.g. one rebuilt from a batch
    /// report, to serve while a stream catches up).
    pub fn with_initial(snapshot: Snapshot) -> Self {
        SnapshotPublisher { slot: Arc::new(RwLock::new(snapshot)) }
    }

    /// The current snapshot: a cheap `Arc` clone taken under the read lock.
    /// The returned handle stays valid (and unchanged) however many epochs
    /// are published afterwards.
    pub fn load(&self) -> Snapshot {
        self.slot.read().expect("publisher slot poisoned").clone()
    }

    /// Atomically replace the current snapshot. Readers that loaded before
    /// this call keep their old snapshot; every later `load` sees the new
    /// one.
    pub fn publish(&self, snapshot: Snapshot) {
        *self.slot.write().expect("publisher slot poisoned") = snapshot;
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_a_stable_handle_across_publishes() {
        let publisher = SnapshotPublisher::new();
        assert_eq!(publisher.epoch(), 0);
        let before = publisher.load();

        let next = Snapshot::empty();
        publisher.publish(next.clone());
        // The old handle still reads epoch 0 state; the slot serves the new
        // snapshot (here also epoch 0 — identity is what matters).
        assert_eq!(before.epoch(), 0);
        assert_eq!(publisher.load(), next);

        // Clones of the publisher address the same slot.
        let clone = publisher.clone();
        clone.publish(Snapshot::empty());
        assert_eq!(publisher.load(), clone.load());
    }
}
