//! The publication seam between ingestion and the concurrent read path:
//! a single atomic slot holding the current [`Snapshot`], plus a bounded
//! history of recent epochs for time travel.
//!
//! Writers (the streaming analyzer, once per ingested epoch) swap a freshly
//! built snapshot in; readers grab a handle with [`SnapshotPublisher::load`]
//! and then work off that immutable snapshot for as long as they like —
//! publication never blocks on readers, readers never observe a snapshot
//! mid-swap, and a reader holding an old snapshot simply keeps the old
//! epoch's `Arc` alive until it drops the handle. That is the whole
//! isolation story: one `load` = one epoch, torn reads are impossible by
//! construction.
//!
//! # Retention
//!
//! Delta-encoded snapshots make history cheap: consecutive epochs share
//! their unchanged segments, so retaining the last `recent` epochs costs
//! roughly one epoch delta each, not one world each. The publisher keeps a
//! ring of the most recent epochs plus optional periodic **checkpoints**
//! (every `checkpoint_every` epochs, kept beyond the ring) under a
//! configurable [`RetentionPolicy`]; [`SnapshotPublisher::at_epoch`] answers
//! time-travel queries from either, and evicted epochs miss with `None` —
//! the query layer turns that into a typed response, never a panic.
//!
//! The lock is held only for the duration of an `Arc` clone or swap (no
//! index is ever built or read under it), so the read path scales with
//! reader threads.
//!
//! The publisher is also the runtime aggregation point for the read side's
//! operational state: query services register their response caches here
//! (weakly — a dropped service unregisters itself by expiring), so
//! [`SnapshotPublisher::cache_stats`] answers "how is the cache tier doing"
//! without touching any individual service, and
//! [`SnapshotPublisher::current_epoch`] reads the published epoch from a
//! single atomic instead of cloning the snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

use crate::cache::{CacheStats, ShardedLru};
use crate::snapshot::Snapshot;

/// How many historical epochs a publisher keeps, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Size of the recent-epoch ring (the current snapshot included). `0`
    /// disables history entirely — only the current snapshot is served.
    pub recent: usize,
    /// Keep every `checkpoint_every`-th epoch beyond the ring as a full
    /// checkpoint (`0` disables checkpoints). Checkpoints are ordinary
    /// published snapshots — bit-identical to what was served at that epoch.
    pub checkpoint_every: u64,
}

impl RetentionPolicy {
    /// Keep nothing but the current snapshot (the pre-retention behaviour).
    pub fn none() -> Self {
        RetentionPolicy { recent: 0, checkpoint_every: 0 }
    }

    /// Whether `epoch` is a checkpoint under this policy.
    fn is_checkpoint(&self, epoch: u64) -> bool {
        self.checkpoint_every > 0 && epoch > 0 && epoch.is_multiple_of(self.checkpoint_every)
    }
}

impl Default for RetentionPolicy {
    /// Eight recent epochs, checkpoints every 32: enough for short-horizon
    /// diffs and trends while bounding memory to a handful of epoch deltas.
    fn default() -> Self {
        RetentionPolicy { recent: 8, checkpoint_every: 32 }
    }
}

/// The retained-epoch store guarded by one mutex: a ring of recent epochs
/// plus sparse checkpoints, both ascending by epoch.
#[derive(Debug, Default)]
struct History {
    recent: VecDeque<Snapshot>,
    checkpoints: Vec<Snapshot>,
}

/// The shared, cloneable publication slot. Clones address the same slot:
/// hand one to the ingestion side and as many as needed to readers.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPublisher {
    slot: Arc<RwLock<Snapshot>>,
    /// Epoch of the snapshot in `slot`, mirrored into an atomic so epoch
    /// probes (lag measurement, monitoring) cost one relaxed load instead of
    /// a lock + `Arc` clone.
    epoch_cell: Arc<AtomicU64>,
    /// Retained historical epochs (see [`RetentionPolicy`]).
    history: Arc<Mutex<History>>,
    /// The retention policy; fixed at construction.
    policy: RetentionPolicy,
    /// Caches registered by the query services reading from this slot, held
    /// weakly: a dropped service's cache simply stops resolving and is
    /// pruned at registration and aggregation time.
    caches: Arc<Mutex<Vec<Weak<ShardedLru>>>>,
}

impl SnapshotPublisher {
    /// A fresh publisher holding the empty epoch-zero snapshot, retaining
    /// history under the default [`RetentionPolicy`].
    pub fn new() -> Self {
        SnapshotPublisher { policy: RetentionPolicy::default(), ..SnapshotPublisher::default() }
    }

    /// A fresh publisher with an explicit retention policy.
    pub fn with_retention(policy: RetentionPolicy) -> Self {
        SnapshotPublisher { policy, ..SnapshotPublisher::default() }
    }

    /// A publisher pre-loaded with `snapshot` (e.g. one rebuilt from a batch
    /// report, to serve while a stream catches up), default retention.
    pub fn with_initial(snapshot: Snapshot) -> Self {
        let publisher = SnapshotPublisher::new();
        publisher.publish(snapshot);
        publisher
    }

    /// The retention policy this publisher was built with.
    pub fn retention(&self) -> RetentionPolicy {
        self.policy
    }

    /// The current snapshot: a cheap `Arc` clone taken under the read lock.
    /// The returned handle stays valid (and unchanged) however many epochs
    /// are published afterwards.
    pub fn load(&self) -> Snapshot {
        self.slot.read().expect("publisher slot poisoned").clone()
    }

    /// Atomically replace the current snapshot and retain the previous ones
    /// per the retention policy. Readers that loaded before this call keep
    /// their old snapshot; every later `load` sees the new one.
    pub fn publish(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch();
        {
            let mut history = self.history.lock().expect("publisher history poisoned");
            if self.policy.recent > 0 {
                // Re-publishing an epoch (analyzer restart, batch preload)
                // supersedes any stale retained entry at or past it.
                while history.recent.back().is_some_and(|held| held.epoch() >= epoch) {
                    history.recent.pop_back();
                }
                history.recent.push_back(snapshot.clone());
                while history.recent.len() > self.policy.recent {
                    let evicted = history.recent.pop_front().expect("ring is non-empty");
                    if self.policy.is_checkpoint(evicted.epoch()) {
                        history.checkpoints.retain(|held| held.epoch() < evicted.epoch());
                        history.checkpoints.push(evicted);
                    }
                }
            }
            obs::gauge!(
                "serve.publisher.retained_epochs",
                (history.recent.len() + history.checkpoints.len()) as i64
            );
            obs::gauge!("serve.publisher.ring_occupancy", history.recent.len() as i64);
            obs::gauge!("serve.publisher.checkpoints", history.checkpoints.len() as i64);
        }
        if obs::recording() {
            // Provenance of the published build (delta-vs-full split and the
            // segment-reuse ratio that makes delta publishing sublinear) —
            // the `chunk_reuse` SLO's input.
            let build = snapshot.build_stats();
            obs::gauge!("serve.publish.delta", i64::from(build.delta));
            if build.delta {
                obs::gauge!(
                    "serve.publish.reuse_ratio",
                    (build.chunk_reuse_ratio() * 10_000.0) as i64
                );
            }
            // `build_ns == 0` marks a synthetic snapshot (empty default, test
            // stamp) that never went through a timed build; don't pollute the
            // latency split with zeros.
            if build.build_ns > 0 {
                if build.delta {
                    obs::histogram!("serve.publish.delta_ns", build.build_ns);
                } else {
                    obs::histogram!("serve.publish.full_ns", build.build_ns);
                }
            }
        }
        *self.slot.write().expect("publisher slot poisoned") = snapshot;
        self.epoch_cell.store(epoch, Ordering::Relaxed);
        obs::counter!("serve.publisher.publishes");
        obs::gauge!("serve.publisher.epoch", epoch as i64);
    }

    /// The snapshot published at `epoch`, if retained: the current snapshot,
    /// a ring entry, or a checkpoint. `None` means the epoch was evicted (or
    /// never published) — callers surface that as a typed miss.
    pub fn at_epoch(&self, epoch: u64) -> Option<Snapshot> {
        let current = self.load();
        if current.epoch() == epoch {
            return Some(current);
        }
        let history = self.history.lock().expect("publisher history poisoned");
        history
            .recent
            .iter()
            .chain(history.checkpoints.iter())
            .find(|snapshot| snapshot.epoch() == epoch)
            .cloned()
    }

    /// Epochs answerable by [`SnapshotPublisher::at_epoch`], ascending and
    /// deduplicated (the current epoch included).
    pub fn retained_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = {
            let history = self.history.lock().expect("publisher history poisoned");
            history.recent.iter().chain(history.checkpoints.iter()).map(Snapshot::epoch).collect()
        };
        epochs.push(self.current_epoch());
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Epoch of the currently published snapshot, from the mirrored atomic —
    /// no lock, no snapshot clone. May trail [`SnapshotPublisher::epoch`] by
    /// one publish for a concurrent reader (the mirror is updated after the
    /// swap), which is exactly the window epoch-lag metrics exist to see.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_cell.load(Ordering::Relaxed)
    }

    /// Register a query service's response cache for runtime stats
    /// aggregation. Held weakly; dropping the cache unregisters it. Dead
    /// registrations from dropped services are pruned here too, so a
    /// long-lived publisher outliving many analyzer/service generations
    /// never accumulates stale entries even if nobody polls
    /// [`SnapshotPublisher::cache_stats`].
    pub fn register_cache(&self, cache: &Arc<ShardedLru>) {
        let mut caches = self.caches.lock().expect("publisher cache list poisoned");
        caches.retain(|weak| weak.strong_count() > 0);
        caches.push(Arc::downgrade(cache));
    }

    /// Number of live cache registrations (dead ones are not counted).
    pub fn registered_caches(&self) -> usize {
        self.caches
            .lock()
            .expect("publisher cache list poisoned")
            .iter()
            .filter(|weak| weak.strong_count() > 0)
            .count()
    }

    /// Aggregate hit/miss/eviction counters across every live registered
    /// cache (services whose caches were dropped are pruned here).
    pub fn cache_stats(&self) -> CacheStats {
        let mut caches = self.caches.lock().expect("publisher cache list poisoned");
        caches.retain(|weak| weak.strong_count() > 0);
        caches
            .iter()
            .filter_map(Weak::upgrade)
            .fold(CacheStats::default(), |acc, cache| acc.merge(&cache.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CacheConfig, Query, QueryService};
    use crate::snapshot::SnapshotMeta;
    use ethsim::BlockNumber;
    use std::collections::HashMap;

    /// An empty snapshot stamped with `epoch` (watermark = epoch, so the
    /// retained copies are distinguishable).
    fn stamped(epoch: u64) -> Snapshot {
        Snapshot::from_dense(
            SnapshotMeta { epoch, watermark: BlockNumber(epoch) },
            &[],
            &washtrade::dataset::Dataset::default(),
            &marketplace::MarketplaceDirectory::new(),
            &oracle::PriceOracle::default(),
            &HashMap::new(),
        )
    }

    #[test]
    fn load_returns_a_stable_handle_across_publishes() {
        let publisher = SnapshotPublisher::new();
        assert_eq!(publisher.epoch(), 0);
        let before = publisher.load();

        let next = Snapshot::empty();
        publisher.publish(next.clone());
        // The old handle still reads epoch 0 state; the slot serves the new
        // snapshot (here also epoch 0 — identity is what matters).
        assert_eq!(before.epoch(), 0);
        assert_eq!(publisher.load(), next);

        // Clones of the publisher address the same slot.
        let clone = publisher.clone();
        clone.publish(Snapshot::empty());
        assert_eq!(publisher.load(), clone.load());
        assert_eq!(publisher.current_epoch(), publisher.epoch());
    }

    #[test]
    fn retention_ring_keeps_recent_epochs_and_evicts_old_ones() {
        let publisher =
            SnapshotPublisher::with_retention(RetentionPolicy { recent: 3, checkpoint_every: 0 });
        for epoch in 1..=6 {
            publisher.publish(stamped(epoch));
        }
        assert_eq!(publisher.retained_epochs(), vec![4, 5, 6]);
        assert_eq!(publisher.at_epoch(5).expect("retained").watermark(), BlockNumber(5));
        assert_eq!(publisher.at_epoch(2), None, "evicted epochs miss");
        assert_eq!(publisher.at_epoch(99), None, "future epochs miss");
    }

    #[test]
    fn checkpoints_survive_ring_eviction() {
        let publisher =
            SnapshotPublisher::with_retention(RetentionPolicy { recent: 2, checkpoint_every: 3 });
        for epoch in 1..=8 {
            publisher.publish(stamped(epoch));
        }
        // Ring holds 7..=8; epochs 3 and 6 were checkpointed on eviction.
        assert_eq!(publisher.retained_epochs(), vec![3, 6, 7, 8]);
        assert_eq!(publisher.at_epoch(3).expect("checkpoint").epoch(), 3);
        assert_eq!(publisher.at_epoch(4), None);
    }

    #[test]
    fn republishing_an_epoch_supersedes_the_retained_copy() {
        let publisher =
            SnapshotPublisher::with_retention(RetentionPolicy { recent: 4, checkpoint_every: 0 });
        publisher.publish(stamped(1));
        publisher.publish(stamped(2));
        // A restarted analyzer re-publishes epoch 2: no duplicate entry.
        publisher.publish(stamped(2));
        assert_eq!(publisher.retained_epochs(), vec![1, 2]);
    }

    #[test]
    fn retention_none_serves_only_the_current_epoch() {
        let publisher = SnapshotPublisher::with_retention(RetentionPolicy::none());
        publisher.publish(stamped(1));
        publisher.publish(stamped(2));
        assert_eq!(publisher.retained_epochs(), vec![2]);
        assert_eq!(publisher.at_epoch(2).expect("current").epoch(), 2);
        assert_eq!(publisher.at_epoch(1), None);
    }

    #[test]
    fn registered_caches_report_through_the_publisher() {
        let publisher = SnapshotPublisher::new();
        let service_a = QueryService::with_cache(publisher.clone(), CacheConfig::default());
        let service_b = QueryService::with_cache(publisher.clone(), CacheConfig::default());

        // One miss then one hit on A, one miss on B.
        service_a.query(&Query::Stats);
        service_a.query(&Query::Stats);
        service_b.query(&Query::Stats);
        let stats = publisher.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));

        // Dropping a service unregisters its cache: its counters vanish from
        // the aggregate.
        drop(service_b);
        let stats = publisher.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn dead_registrations_are_pruned_at_registration_time() {
        // A long-lived publisher sees many short-lived service generations;
        // the registration list must not grow with them even if nobody ever
        // calls `cache_stats`.
        let publisher = SnapshotPublisher::new();
        for _ in 0..32 {
            let service = QueryService::with_cache(publisher.clone(), CacheConfig::default());
            service.query(&Query::Stats);
            drop(service);
        }
        let survivor = QueryService::with_cache(publisher.clone(), CacheConfig::default());
        assert_eq!(publisher.registered_caches(), 1);
        assert!(
            publisher.caches.lock().unwrap().len() <= 2,
            "stale Weak entries must be pruned as generations register"
        );
        drop(survivor);
        assert_eq!(publisher.registered_caches(), 0);
    }
}
