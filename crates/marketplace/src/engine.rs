//! The marketplace engine: deploying a marketplace, executing sales, and
//! operating the volume-based token reward system.

use std::collections::{HashMap, HashSet};

use ethsim::{Address, Chain, Log, Selector, Timestamp, TxHash, TxRequest, Wei};
use labels::{LabelCategory, LabelRegistry};
use serde::{Deserialize, Serialize};
use tokens::{NftId, TokenRegistry};

use crate::directory::{MarketplaceInfo, RewardInfo};
use crate::error::MarketError;
use crate::spec::MarketplaceSpec;

/// Gas consumed by a marketplace sale transaction.
pub const SALE_GAS: u64 = 160_000;
/// Gas consumed by a reward-claim transaction.
pub const CLAIM_GAS: u64 = 80_000;

/// Receipt of an executed sale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaleReceipt {
    /// Hash of the sale transaction.
    pub tx_hash: TxHash,
    /// The marketplace contract the transaction interacted with.
    pub marketplace: Address,
    /// The NFT sold.
    pub nft: NftId,
    /// Seller account.
    pub seller: Address,
    /// Buyer account.
    pub buyer: Address,
    /// Sale price paid by the buyer.
    pub price: Wei,
    /// Platform fee retained by the marketplace treasury.
    pub fee: Wei,
    /// Gas fee paid by the buyer.
    pub gas_fee: Wei,
    /// Block timestamp of the sale.
    pub timestamp: Timestamp,
}

/// Receipt of a reward claim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimReceipt {
    /// Hash of the claim transaction.
    pub tx_hash: TxHash,
    /// The claiming account.
    pub account: Address,
    /// Reward tokens received, in base units.
    pub token_amount: u128,
    /// Block timestamp of the claim.
    pub timestamp: Timestamp,
}

/// Per-day trading volume bookkeeping used by the reward formula.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DayVolume {
    total: Wei,
    per_user: HashMap<Address, Wei>,
}

/// A deployed marketplace with mutable engine state.
#[derive(Debug, Clone)]
pub struct Marketplace {
    /// The static specification (name, fees, reward system).
    pub spec: MarketplaceSpec,
    /// The exchange contract sale transactions interact with.
    pub contract: Address,
    /// The treasury account receiving platform fees.
    pub treasury: Address,
    /// The escrow account, if the marketplace uses escrow.
    pub escrow: Option<Address>,
    /// The reward-token distribution contract, if any.
    pub reward_distributor: Option<Address>,
    /// The reward token's ERC-20 contract, if any.
    pub reward_token: Option<Address>,
    daily: HashMap<u64, DayVolume>,
    pending_rewards: HashMap<Address, u128>,
    accrued_days: HashSet<u64>,
    total_volume: Wei,
    sale_count: u64,
}

impl Marketplace {
    /// Deploy a marketplace onto the chain: exchange contract, treasury,
    /// optional escrow, and (for reward marketplaces) a reward ERC-20 token
    /// plus its distribution contract. All addresses are labelled in the
    /// registry under the [`LabelCategory::Marketplace`] category.
    ///
    /// # Errors
    ///
    /// Propagates chain/token deployment failures (address collisions).
    pub fn deploy(
        chain: &mut Chain,
        tokens: &mut TokenRegistry,
        labels: &mut LabelRegistry,
        spec: MarketplaceSpec,
    ) -> Result<Self, MarketError> {
        let seed = spec.name.to_lowercase().replace(' ', "-");
        let contract = chain.deploy_contract(
            &format!("marketplace:{seed}"),
            tokens::compliance::generic_contract_bytecode(0xaa),
        )?;
        let treasury = chain.create_eoa(&format!("{seed}-treasury"))?;
        labels.insert(
            contract,
            format!("{}: Exchange Contract", spec.name),
            LabelCategory::Marketplace,
        );
        labels.insert(treasury, format!("{}: Treasury", spec.name), LabelCategory::Marketplace);

        let escrow = if spec.uses_escrow {
            let escrow = chain.create_eoa(&format!("{seed}-escrow"))?;
            labels.insert(escrow, format!("{}: Escrow", spec.name), LabelCategory::Marketplace);
            Some(escrow)
        } else {
            None
        };

        let (reward_distributor, reward_token) = if let Some(reward) = &spec.reward {
            let distributor = chain.deploy_contract(
                &format!("{seed}-reward-distributor"),
                tokens::compliance::generic_contract_bytecode(0xbb),
            )?;
            let token = tokens.deploy_erc20(
                chain,
                &format!("{seed}-reward-token"),
                &reward.token_symbol,
                reward.token_decimals,
            )?;
            labels.insert(
                distributor,
                format!("{}: Token Distributor", spec.name),
                LabelCategory::Marketplace,
            );
            labels.insert(token, reward.token_symbol.clone(), LabelCategory::Token);
            (Some(distributor), Some(token))
        } else {
            (None, None)
        };

        Ok(Marketplace {
            spec,
            contract,
            treasury,
            escrow,
            reward_distributor,
            reward_token,
            daily: HashMap::new(),
            pending_rewards: HashMap::new(),
            accrued_days: HashSet::new(),
            total_volume: Wei::ZERO,
            sale_count: 0,
        })
    }

    /// The static, serializable view of this marketplace used by the
    /// detection pipeline.
    pub fn info(&self) -> MarketplaceInfo {
        MarketplaceInfo {
            name: self.spec.name.clone(),
            contract: self.contract,
            treasury: self.treasury,
            escrow: self.escrow,
            fee_bps: self.spec.fee_bps,
            reward: self.spec.reward.as_ref().map(|r| RewardInfo {
                distributor: self.reward_distributor.expect("reward marketplace has distributor"),
                token_contract: self.reward_token.expect("reward marketplace has token"),
                token_symbol: r.token_symbol.clone(),
                token_decimals: r.token_decimals,
                daily_emission: r.daily_emission,
            }),
        }
    }

    /// Execute a sale: the buyer pays `price` to the exchange contract, the
    /// contract forwards the proceeds to the seller and the fee to the
    /// treasury, and the collection emits the ERC-721 transfer log.
    ///
    /// Both buyer and seller are credited with `price` of daily trading
    /// volume, which is how volume-based reward systems count activity.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::UnknownCollection`] if the NFT's contract is not
    /// registered, [`MarketError::Token`] if `seller` does not own the token,
    /// and [`MarketError::Chain`] if the buyer cannot cover price plus gas.
    /// Ownership and balances are unchanged on error.
    // One argument per sale party/parameter; bundling them into a struct
    // would only move the argument list to the construction site.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_sale(
        &mut self,
        chain: &mut Chain,
        tokens: &mut TokenRegistry,
        seller: Address,
        buyer: Address,
        nft: NftId,
        price: Wei,
        gas_price: Wei,
    ) -> Result<SaleReceipt, MarketError> {
        // Validate ownership before touching any state.
        {
            let collection =
                tokens.erc721(nft.contract).ok_or(MarketError::UnknownCollection(nft.contract))?;
            match collection.owner_of(nft.token_id) {
                Some(owner) if owner == seller => {}
                owner => {
                    return Err(MarketError::Token(tokens::TokenError::NotTokenOwner {
                        contract: nft.contract,
                        token_id: nft.token_id,
                        claimed_owner: seller,
                        actual_owner: owner,
                    }))
                }
            }
        }

        let fee = price.bps(self.spec.fee_bps);
        let proceeds = price.saturating_sub(fee);
        let transfer_log = Log::erc721_transfer(nft.contract, seller, buyer, nft.token_id);

        let mut request = TxRequest::contract_call(
            buyer,
            self.contract,
            Selector::of("matchAskWithTakerBid(address,address,uint256,uint256)"),
            price,
            SALE_GAS,
            gas_price,
        )
        .with_log(transfer_log);
        if !proceeds.is_zero() {
            request = request.with_internal_transfer(self.contract, seller, proceeds);
        }
        if !fee.is_zero() {
            request = request.with_internal_transfer(self.contract, self.treasury, fee);
        }
        let gas_fee = request.fee();
        let tx_hash = chain.submit(request)?;
        let timestamp = chain.current_timestamp();

        // The chain accepted the transaction; now commit the ownership change.
        tokens
            .erc721_mut(nft.contract)
            .expect("validated above")
            .transfer(seller, buyer, nft.token_id)
            .expect("ownership validated above");

        // Volume bookkeeping for the reward system.
        let day = timestamp.day();
        let entry = self.daily.entry(day).or_default();
        entry.total += price;
        *entry.per_user.entry(buyer).or_insert(Wei::ZERO) += price;
        *entry.per_user.entry(seller).or_insert(Wei::ZERO) += price;
        self.total_volume += price;
        self.sale_count += 1;

        Ok(SaleReceipt {
            tx_hash,
            marketplace: self.contract,
            nft,
            seller,
            buyer,
            price,
            fee,
            gas_fee,
            timestamp,
        })
    }

    /// Accrue the reward emission of `day` to the users who traded that day,
    /// according to Eq. 1 of the paper (`R_A = a / b * c`). Idempotent per
    /// day. Days without volume emit nothing. Does nothing for marketplaces
    /// without a reward system.
    pub fn accrue_rewards_for_day(&mut self, day: u64) {
        let Some(reward) = &self.spec.reward else {
            return;
        };
        if self.accrued_days.contains(&day) {
            return;
        }
        let Some(volume) = self.daily.get(&day) else {
            return;
        };
        if volume.total.is_zero() {
            return;
        }
        let emission_base_units = reward.daily_emission * 10f64.powi(reward.token_decimals as i32);
        for (user, user_volume) in &volume.per_user {
            let share = user_volume.raw() as f64 / volume.total.raw() as f64 / 2.0;
            // Both sides of every sale are credited, so shares sum to 1 after
            // halving (buyer volume + seller volume = 2 × sale volume).
            let amount = (share * emission_base_units).round() as u128;
            if amount > 0 {
                *self.pending_rewards.entry(*user).or_insert(0) += amount;
            }
        }
        self.accrued_days.insert(day);
    }

    /// Accrue rewards for every day that has recorded volume.
    pub fn accrue_all_days(&mut self) {
        let days: Vec<u64> = self.daily.keys().copied().collect();
        for day in days {
            self.accrue_rewards_for_day(day);
        }
    }

    /// Rewards currently claimable by an account, in token base units.
    pub fn pending_reward(&self, account: Address) -> u128 {
        self.pending_rewards.get(&account).copied().unwrap_or(0)
    }

    /// Claim all pending rewards for `account`: a transaction from the account
    /// to the distribution contract whose log transfers the reward tokens.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::NoRewardSystem`] for marketplaces without
    /// rewards, [`MarketError::NothingToClaim`] when nothing is pending, and
    /// chain errors if the account cannot pay the claim gas.
    pub fn claim_rewards(
        &mut self,
        chain: &mut Chain,
        tokens: &mut TokenRegistry,
        account: Address,
        gas_price: Wei,
    ) -> Result<ClaimReceipt, MarketError> {
        let distributor = self.reward_distributor.ok_or(MarketError::NoRewardSystem)?;
        let token_contract = self.reward_token.ok_or(MarketError::NoRewardSystem)?;
        let amount = match self.pending_rewards.get(&account).copied() {
            Some(amount) if amount > 0 => amount,
            _ => return Err(MarketError::NothingToClaim(account)),
        };

        let request = TxRequest::contract_call(
            account,
            distributor,
            Selector::of("claim()"),
            Wei::ZERO,
            CLAIM_GAS,
            gas_price,
        )
        .with_log(Log::erc20_transfer(token_contract, distributor, account, amount));
        let tx_hash = chain.submit(request)?;
        let timestamp = chain.current_timestamp();

        // Keep the ERC-20 balance table consistent with the emitted log.
        let token = tokens
            .erc20_mut(token_contract)
            .expect("reward token was deployed by this marketplace");
        token.mint(distributor, amount);
        token.transfer(distributor, account, amount).expect("distributor was just credited");

        self.pending_rewards.remove(&account);
        Ok(ClaimReceipt { tx_hash, account, token_amount: amount, timestamp })
    }

    /// Total traded volume since deployment.
    pub fn total_volume(&self) -> Wei {
        self.total_volume
    }

    /// Number of executed sales.
    pub fn sale_count(&self) -> u64 {
        self.sale_count
    }

    /// The total volume recorded on a given day.
    pub fn day_volume(&self, day: u64) -> Wei {
        self.daily.get(&day).map(|v| v.total).unwrap_or(Wei::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;

    struct World {
        chain: Chain,
        tokens: TokenRegistry,
        labels: LabelRegistry,
    }

    fn setup(spec: MarketplaceSpec) -> (World, Marketplace, Address, Address, NftId) {
        let mut chain = Chain::new(Timestamp::from_secs(1_640_995_200));
        let mut tokens = TokenRegistry::new();
        let mut labels = LabelRegistry::new();
        let marketplace = Marketplace::deploy(&mut chain, &mut tokens, &mut labels, spec).unwrap();
        let genesis = chain.current_timestamp();
        let collection =
            tokens.deploy_erc721(&mut chain, "collection", "TestArt", true, genesis).unwrap();
        let seller = chain.create_eoa("seller").unwrap();
        let buyer = chain.create_eoa("buyer").unwrap();
        chain.fund(seller, Wei::from_eth(10.0));
        chain.fund(buyer, Wei::from_eth(10.0));
        let (nft, mint_log) = tokens.erc721_mut(collection).unwrap().mint(seller);
        // Record the mint on-chain as the null-address transfer it really is.
        let mint_request = TxRequest::contract_call(
            seller,
            collection,
            Selector::of("mint(address)"),
            Wei::ZERO,
            90_000,
            Wei::from_gwei(30),
        )
        .with_log(mint_log);
        chain.submit(mint_request).unwrap();
        (World { chain, tokens, labels }, marketplace, seller, buyer, nft)
    }

    #[test]
    fn deploy_labels_all_service_addresses() {
        let (world, marketplace, _, _, _) = setup(presets::looksrare());
        assert!(world.labels.get(marketplace.contract).is_some());
        assert!(world.labels.get(marketplace.treasury).is_some());
        assert!(world.labels.get(marketplace.reward_distributor.unwrap()).is_some());
        assert!(world.chain.is_contract(marketplace.contract));
        assert!(!world.chain.is_contract(marketplace.treasury));
        let info = marketplace.info();
        assert_eq!(info.name, "LooksRare");
        assert_eq!(info.reward.as_ref().unwrap().token_symbol, "LOOKS");
    }

    #[test]
    fn sale_moves_nft_money_and_fee() {
        let (mut world, mut marketplace, seller, buyer, nft) = setup(presets::opensea());
        let receipt = marketplace
            .execute_sale(
                &mut world.chain,
                &mut world.tokens,
                seller,
                buyer,
                nft,
                Wei::from_eth(2.0),
                Wei::from_gwei(30),
            )
            .unwrap();
        // 2.5% of 2 ETH.
        assert_eq!(receipt.fee, Wei::from_eth(0.05));
        assert_eq!(world.tokens.erc721(nft.contract).unwrap().owner_of(nft.token_id), Some(buyer));
        assert_eq!(world.chain.balance(marketplace.treasury), Wei::from_eth(0.05));
        // Seller receives the proceeds; the only fee the seller ever paid is
        // the gas of the setup mint transaction (90,000 gas at 30 gwei).
        let mint_gas = Wei(90_000u128 * Wei::from_gwei(30).raw());
        assert_eq!(
            world.chain.balance(seller),
            Wei::from_eth(10.0) + Wei::from_eth(1.95) - mint_gas
        );
        // The buyer paid price plus sale gas.
        assert_eq!(
            world.chain.balance(buyer),
            Wei::from_eth(10.0) - Wei::from_eth(2.0) - receipt.gas_fee
        );
        // The sale transaction interacted with the marketplace contract.
        let tx = world.chain.transaction(receipt.tx_hash).unwrap();
        assert_eq!(tx.to, Some(marketplace.contract));
        assert_eq!(tx.logs.len(), 1);
        assert!(tx.logs[0].is_erc721_transfer());
        assert_eq!(marketplace.sale_count(), 1);
        assert_eq!(marketplace.total_volume(), Wei::from_eth(2.0));
    }

    #[test]
    fn sale_by_non_owner_fails_cleanly() {
        let (mut world, mut marketplace, _seller, buyer, nft) = setup(presets::opensea());
        let stranger = world.chain.create_eoa("stranger").unwrap();
        world.chain.fund(stranger, Wei::from_eth(5.0));
        let result = marketplace.execute_sale(
            &mut world.chain,
            &mut world.tokens,
            stranger,
            buyer,
            nft,
            Wei::from_eth(1.0),
            Wei::from_gwei(30),
        );
        assert!(matches!(result, Err(MarketError::Token(_))));
        assert_eq!(marketplace.sale_count(), 0);
    }

    #[test]
    fn sale_with_insufficient_buyer_funds_fails_without_moving_nft() {
        let (mut world, mut marketplace, seller, buyer, nft) = setup(presets::opensea());
        let result = marketplace.execute_sale(
            &mut world.chain,
            &mut world.tokens,
            seller,
            buyer,
            nft,
            Wei::from_eth(100.0),
            Wei::from_gwei(30),
        );
        assert!(matches!(result, Err(MarketError::Chain(_))));
        assert_eq!(
            world.tokens.erc721(nft.contract).unwrap().owner_of(nft.token_id),
            Some(seller),
            "ownership must not change when payment fails"
        );
    }

    #[test]
    fn reward_accrual_follows_equation_one() {
        let (mut world, mut marketplace, seller, buyer, nft) = setup(presets::looksrare());
        marketplace
            .execute_sale(
                &mut world.chain,
                &mut world.tokens,
                seller,
                buyer,
                nft,
                Wei::from_eth(4.0),
                Wei::from_gwei(30),
            )
            .unwrap();
        let day = world.chain.current_timestamp().day();
        marketplace.accrue_rewards_for_day(day);
        // Only two participants, equal volume: each gets half of the daily emission.
        let emission = 2_866_500.0 * 1e18;
        let expected_half = (emission / 2.0) as u128;
        let tolerance = 10u128.pow(12);
        for account in [seller, buyer] {
            let pending = marketplace.pending_reward(account);
            assert!(
                pending.abs_diff(expected_half) < tolerance,
                "pending {pending} vs expected {expected_half}"
            );
        }
        // Accrual is idempotent.
        marketplace.accrue_rewards_for_day(day);
        assert!(marketplace.pending_reward(seller).abs_diff(expected_half) < tolerance);
    }

    #[test]
    fn claim_transfers_tokens_and_clears_pending() {
        let (mut world, mut marketplace, seller, buyer, nft) = setup(presets::looksrare());
        marketplace
            .execute_sale(
                &mut world.chain,
                &mut world.tokens,
                seller,
                buyer,
                nft,
                Wei::from_eth(1.0),
                Wei::from_gwei(30),
            )
            .unwrap();
        marketplace.accrue_all_days();
        let pending = marketplace.pending_reward(seller);
        assert!(pending > 0);
        let receipt = marketplace
            .claim_rewards(&mut world.chain, &mut world.tokens, seller, Wei::from_gwei(30))
            .unwrap();
        assert_eq!(receipt.token_amount, pending);
        assert_eq!(marketplace.pending_reward(seller), 0);
        // The claim transaction targets the distributor and carries the token log.
        let tx = world.chain.transaction(receipt.tx_hash).unwrap();
        assert_eq!(tx.to, marketplace.reward_distributor);
        assert_eq!(tx.selector(), Some(Selector::of("claim()")));
        let token = world.tokens.erc20(marketplace.reward_token.unwrap()).unwrap();
        assert_eq!(token.balance_of(seller), pending);
        // Claiming again fails.
        assert!(matches!(
            marketplace.claim_rewards(
                &mut world.chain,
                &mut world.tokens,
                seller,
                Wei::from_gwei(30)
            ),
            Err(MarketError::NothingToClaim(_))
        ));
    }

    #[test]
    fn non_reward_marketplace_rejects_claims() {
        let (mut world, mut marketplace, seller, _, _) = setup(presets::opensea());
        marketplace.accrue_all_days();
        assert_eq!(marketplace.pending_reward(seller), 0);
        assert!(matches!(
            marketplace.claim_rewards(
                &mut world.chain,
                &mut world.tokens,
                seller,
                Wei::from_gwei(30)
            ),
            Err(MarketError::NoRewardSystem)
        ));
    }

    #[test]
    fn zero_price_sale_is_allowed_and_records_no_volume_value() {
        let (mut world, mut marketplace, seller, buyer, nft) = setup(presets::opensea());
        let receipt = marketplace
            .execute_sale(
                &mut world.chain,
                &mut world.tokens,
                seller,
                buyer,
                nft,
                Wei::ZERO,
                Wei::from_gwei(30),
            )
            .unwrap();
        assert_eq!(receipt.fee, Wei::ZERO);
        assert_eq!(marketplace.total_volume(), Wei::ZERO);
        let tx = world.chain.transaction(receipt.tx_hash).unwrap();
        assert!(!tx.moves_value());
    }
}
