//! Marketplace specifications and the six presets studied in the paper.

use serde::{Deserialize, Serialize};

/// Specification of a marketplace's reward system: a daily emission of the
/// platform token split among users proportionally to their trading volume
/// (Eq. 1 of the paper: `R_A = a / b * c`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardSpec {
    /// Symbol of the reward token (e.g. "LOOKS", "RARI").
    pub token_symbol: String,
    /// Decimal places of the reward token.
    pub token_decimals: u32,
    /// Tokens distributed per day (`c` in Eq. 1), in whole tokens.
    pub daily_emission: f64,
}

/// Static description of a marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketplaceSpec {
    /// Marketplace name (e.g. "OpenSea").
    pub name: String,
    /// Total fee charged per sale, in basis points of the sale price.
    pub fee_bps: u32,
    /// Whether the marketplace holds listed NFTs in an escrow account.
    pub uses_escrow: bool,
    /// The volume-based token reward system, if the marketplace has one.
    pub reward: Option<RewardSpec>,
}

impl MarketplaceSpec {
    /// Create a spec without a reward system.
    pub fn new(name: impl Into<String>, fee_bps: u32, uses_escrow: bool) -> Self {
        MarketplaceSpec { name: name.into(), fee_bps, uses_escrow, reward: None }
    }

    /// Attach a reward system (builder style).
    pub fn with_reward(mut self, reward: RewardSpec) -> Self {
        self.reward = Some(reward);
        self
    }

    /// Whether the marketplace rewards users by trading volume.
    pub fn has_reward_system(&self) -> bool {
        self.reward.is_some()
    }
}

/// The six marketplaces of the paper's Table I, with the fee levels reported
/// in §IX (OpenSea 2.5%, LooksRare 2%, Rarible 2%, Foundation 15%) and
/// publicly documented values for the remaining two.
pub mod presets {
    use super::*;

    /// OpenSea: 2.5% fee, no escrow, no reward token.
    pub fn opensea() -> MarketplaceSpec {
        MarketplaceSpec::new("OpenSea", 250, false)
    }

    /// LooksRare: 2% fee, no escrow, LOOKS rewards distributed daily by
    /// trading volume.
    pub fn looksrare() -> MarketplaceSpec {
        MarketplaceSpec::new("LooksRare", 200, false).with_reward(RewardSpec {
            token_symbol: "LOOKS".to_string(),
            token_decimals: 18,
            daily_emission: 2_866_500.0,
        })
    }

    /// Rarible: 2% fee, no escrow, RARI rewards distributed daily by trading
    /// volume.
    pub fn rarible() -> MarketplaceSpec {
        MarketplaceSpec::new("Rarible", 200, false).with_reward(RewardSpec {
            token_symbol: "RARI".to_string(),
            token_decimals: 18,
            daily_emission: 10_714.0,
        })
    }

    /// SuperRare: 3% buyer fee, escrow-based listings, no reward token.
    pub fn superrare() -> MarketplaceSpec {
        MarketplaceSpec::new("SuperRare", 300, true)
    }

    /// Foundation: 15% fee (the paper's explanation for the absence of wash
    /// trading there), escrow-based, no reward token.
    pub fn foundation() -> MarketplaceSpec {
        MarketplaceSpec::new("Foundation", 1_500, true)
    }

    /// Decentraland's marketplace: 2.5% fee, no escrow, no reward token.
    pub fn decentraland() -> MarketplaceSpec {
        MarketplaceSpec::new("Decentraland", 250, false)
    }

    /// All six presets in the paper's Table I order.
    pub fn all() -> Vec<MarketplaceSpec> {
        vec![opensea(), looksrare(), foundation(), superrare(), rarible(), decentraland()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_fee_levels() {
        assert_eq!(presets::opensea().fee_bps, 250);
        assert_eq!(presets::looksrare().fee_bps, 200);
        assert_eq!(presets::rarible().fee_bps, 200);
        assert_eq!(presets::foundation().fee_bps, 1_500);
        assert_eq!(presets::all().len(), 6);
    }

    #[test]
    fn only_looksrare_and_rarible_have_reward_systems() {
        for spec in presets::all() {
            let expected = spec.name == "LooksRare" || spec.name == "Rarible";
            assert_eq!(spec.has_reward_system(), expected, "{}", spec.name);
        }
    }

    #[test]
    fn builder_attaches_reward() {
        let spec = MarketplaceSpec::new("Custom", 100, false).with_reward(RewardSpec {
            token_symbol: "X".to_string(),
            token_decimals: 18,
            daily_emission: 1000.0,
        });
        assert!(spec.has_reward_system());
        assert_eq!(spec.reward.unwrap().daily_emission, 1000.0);
    }
}
