//! A static directory of deployed marketplaces, consumed by the detection
//! pipeline.
//!
//! The paper attributes NFT transfer transactions to marketplaces "by looking
//! at which smart contract address the transactions interact with", retrieves
//! fee payments by looking for transfers to the marketplaces' treasury
//! accounts, and retrieves reward claims by looking for calls to the token
//! distribution contracts. [`MarketplaceDirectory`] packages exactly that
//! address knowledge, decoupled from the mutable engine state.

use ethsim::fxhash::FxHashMap;
use ethsim::Address;
use serde::{Deserialize, Serialize};

/// Reward-system addresses of a marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardInfo {
    /// The token distribution (claim) contract.
    pub distributor: Address,
    /// The reward token's ERC-20 contract.
    pub token_contract: Address,
    /// The reward token's symbol.
    pub token_symbol: String,
    /// The reward token's decimals.
    pub token_decimals: u32,
    /// Tokens emitted per day.
    pub daily_emission: f64,
}

/// Static, serializable description of a deployed marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketplaceInfo {
    /// Marketplace name.
    pub name: String,
    /// The marketplace's exchange contract (what sale transactions interact with).
    pub contract: Address,
    /// The treasury account collecting platform fees.
    pub treasury: Address,
    /// The escrow account, if the marketplace uses one.
    pub escrow: Option<Address>,
    /// Total sale fee in basis points.
    pub fee_bps: u32,
    /// Reward-system addresses, if any.
    pub reward: Option<RewardInfo>,
}

/// Lookup of marketplaces by exchange-contract address or name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarketplaceDirectory {
    entries: Vec<MarketplaceInfo>,
    #[serde(skip)]
    by_contract: FxHashMap<Address, usize>,
}

impl MarketplaceDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        MarketplaceDirectory::default()
    }

    /// Add a marketplace to the directory.
    pub fn add(&mut self, info: MarketplaceInfo) {
        self.by_contract.insert(info.contract, self.entries.len());
        self.entries.push(info);
    }

    /// Look up a marketplace by its exchange-contract address.
    pub fn by_contract(&self, contract: Address) -> Option<&MarketplaceInfo> {
        if self.by_contract.is_empty() && !self.entries.is_empty() {
            // Deserialized directories have an empty index; fall back to scan.
            return self.entries.iter().find(|m| m.contract == contract);
        }
        self.by_contract.get(&contract).map(|&i| &self.entries[i])
    }

    /// Look up a marketplace by name.
    pub fn by_name(&self, name: &str) -> Option<&MarketplaceInfo> {
        self.entries.iter().find(|m| m.name == name)
    }

    /// All marketplaces, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MarketplaceInfo> {
        self.entries.iter()
    }

    /// Number of marketplaces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<MarketplaceInfo> for MarketplaceDirectory {
    fn from_iter<T: IntoIterator<Item = MarketplaceInfo>>(iter: T) -> Self {
        let mut directory = MarketplaceDirectory::new();
        for info in iter {
            directory.add(info);
        }
        directory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str) -> MarketplaceInfo {
        MarketplaceInfo {
            name: name.to_string(),
            contract: Address::derived(&format!("{name}-contract")),
            treasury: Address::derived(&format!("{name}-treasury")),
            escrow: None,
            fee_bps: 250,
            reward: None,
        }
    }

    #[test]
    fn lookup_by_contract_and_name() {
        let directory: MarketplaceDirectory =
            vec![info("OpenSea"), info("LooksRare")].into_iter().collect();
        assert_eq!(directory.len(), 2);
        let opensea = directory.by_name("OpenSea").unwrap();
        assert_eq!(directory.by_contract(opensea.contract).unwrap().name, "OpenSea");
        assert!(directory.by_contract(Address::derived("unknown")).is_none());
        assert!(directory.by_name("Rarible").is_none());
        assert!(!directory.is_empty());
    }
}
