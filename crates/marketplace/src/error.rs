//! Errors produced by the marketplace engine.

use ethsim::{Address, ChainError};
use tokens::TokenError;

/// Errors from deploying marketplaces, executing sales or claiming rewards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// An underlying chain operation failed (balance, unknown account, …).
    Chain(ChainError),
    /// An underlying token operation failed (ownership, token balance, …).
    Token(TokenError),
    /// The NFT's collection is not registered in the token registry.
    UnknownCollection(Address),
    /// The marketplace has no token reward system.
    NoRewardSystem,
    /// The account has no accrued rewards to claim.
    NothingToClaim(Address),
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::Chain(e) => write!(f, "chain error: {e}"),
            MarketError::Token(e) => write!(f, "token error: {e}"),
            MarketError::UnknownCollection(a) => write!(f, "collection {a} is not registered"),
            MarketError::NoRewardSystem => write!(f, "marketplace has no reward system"),
            MarketError::NothingToClaim(a) => write!(f, "account {a} has no rewards to claim"),
        }
    }
}

impl std::error::Error for MarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarketError::Chain(e) => Some(e),
            MarketError::Token(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for MarketError {
    fn from(e: ChainError) -> Self {
        MarketError::Chain(e)
    }
}

impl From<TokenError> for MarketError {
    fn from(e: TokenError) -> Self {
        MarketError::Token(e)
    }
}
