//! # marketplace — NFT marketplace engine
//!
//! The paper's wash-trading analysis revolves around six NFT marketplaces
//! (OpenSea, LooksRare, Foundation, SuperRare, Rarible, Decentraland): sale
//! transactions interact with their exchange contracts, fees flow to their
//! treasury accounts, and — on LooksRare and Rarible — trading volume earns
//! platform tokens distributed daily (Eq. 1) and redeemed through claim
//! contracts. This crate simulates all of that on top of `ethsim` and
//! `tokens`:
//!
//! * [`MarketplaceSpec`] / [`spec::presets`] — fee levels, escrow usage and
//!   reward-system parameters for the six marketplaces;
//! * [`Marketplace`] — deployment, sale execution (ERC-721 transfer log +
//!   internal ETH transfers to seller and treasury), reward accrual and
//!   claims;
//! * [`MarketplaceDirectory`] — the static address directory the detection
//!   pipeline uses to attribute transactions, fees and claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod engine;
pub mod error;
pub mod spec;

pub use directory::{MarketplaceDirectory, MarketplaceInfo, RewardInfo};
pub use engine::{ClaimReceipt, Marketplace, SaleReceipt, CLAIM_GAS, SALE_GAS};
pub use error::MarketError;
pub use spec::{presets, MarketplaceSpec, RewardSpec};
