//! Quickstart: generate a small synthetic world, run the full wash-trading
//! analysis pipeline, and print a summary of what was found.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade::report;
use workload::{WorkloadConfig, World};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a deterministic synthetic Ethereum world: marketplaces,
    //    collections, ordinary trading and a few dozen planted wash-trading
    //    activities.
    let config = WorkloadConfig::small(42);
    let world = World::generate(config)?;
    println!(
        "generated chain: {} transactions, {} planted wash-trading activities\n",
        world.chain.stats().transactions,
        world.truth.len()
    );

    // 2. Run the paper's pipeline: dataset → graphs → refinement → detection
    //    → characterization → profitability.
    let analysis = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });

    // 3. Print the headline numbers.
    println!(
        "dataset: {} NFTs, {} ERC-721 transfers ({} raw events, {} compliant contracts)",
        analysis.dataset_nfts,
        analysis.dataset_transfers,
        analysis.raw_transfer_events,
        analysis.compliant_contracts
    );
    println!("{}", report::render_refinement(&analysis.refinement));
    println!(
        "confirmed wash-trading activities: {} (rejected candidates: {})",
        analysis.detection.confirmed.len(),
        analysis.detection.rejected
    );
    println!("{}", report::render_fig2(&analysis.detection.venn));
    println!("{}", report::render_table2(&analysis.characterization));

    // 4. How well did detection do against the planted ground truth?
    let planted: std::collections::HashSet<_> = world.truth.iter().map(|t| t.nft).collect();
    let detected: std::collections::HashSet<_> =
        analysis.detection.confirmed.iter().map(|a| a.nft()).collect();
    let recall = planted.intersection(&detected).count() as f64 / planted.len().max(1) as f64;
    println!("recall against planted ground truth: {:.1}%", recall * 100.0);
    Ok(())
}
