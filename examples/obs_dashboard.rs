//! Observability dashboard: run the full streaming pipeline on a generated
//! world while the `obs` registry records every subsystem, then print what an
//! operator would look at — the metrics snapshot as a text table, the derived
//! health indicators (executor utilization, cache hit rate, per-epoch
//! latency quantiles), the SLO health report, the last epoch's causal span
//! tree from the flight recorder, the recent-event tail, and the
//! machine-readable JSON export. A Chrome trace of the whole run is written
//! to `target/obs_dashboard_trace.json` for Perfetto.
//!
//! ```text
//! cargo run --release --example obs_dashboard -- [epochs] [seed]
//! ```
//!
//! Built with `--features obs-noop` this prints an empty snapshot — the
//! record paths compiled to nothing — which is itself the demonstration that
//! the escape hatch works.

use washtrade::pipeline::AnalysisInput;
use washtrade_serve::{Query, QueryService, Response};
use washtrade_stream::{StreamAnalyzer, StreamOptions};
use workload::{WorkloadConfig, World};

/// Render one flight-recorder span and its children, indented by depth.
fn print_span_tree(
    records: &[obs::SpanRecord],
    children: &std::collections::HashMap<Option<obs::SpanId>, Vec<usize>>,
    index: usize,
    depth: usize,
) {
    let record = &records[index];
    let attrs: Vec<String> =
        record.attrs.iter().map(|(key, value)| format!("{key}={value}")).collect();
    println!(
        "  {:indent$}{} ({:.3} ms){}{}",
        "",
        record.name,
        record.duration_ns as f64 / 1e6,
        if attrs.is_empty() { "" } else { "  " },
        attrs.join(" "),
        indent = depth * 2,
    );
    for &child in children.get(&Some(record.span)).map_or(&[][..], Vec::as_slice) {
        print_span_tree(records, children, child, depth + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    obs::flight::install_panic_hook();
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let world = World::generate(WorkloadConfig::small(seed))?;
    let plan = world.epoch_plan(epochs);
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };

    // Stream the world end to end, with a reader issuing a small query mix
    // after every epoch so the serve-side metrics have traffic to report.
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let service = QueryService::new(live.publisher());
    for budget in plan.budgets() {
        if live.ingest_epoch(budget).is_none() {
            break;
        }
        service.query(&Query::Stats);
        service.query(&Query::Stats); // second hit comes from the cache
        service.query(&Query::TopMovers(5));
        service.query(&Query::Marketplaces);
    }

    // The operator's view: ask the serving layer itself for the metrics.
    let Response::Metrics(snapshot) = service.query(&Query::Metrics).response else {
        unreachable!("metrics query answers with metrics")
    };

    println!("== metrics snapshot (version {}) ==", snapshot.version);
    println!("{}", snapshot.render_text());

    if !obs::enabled() {
        println!("(obs-noop build: instrumentation compiled out, nothing to derive)");
        return Ok(());
    }

    println!("== derived health indicators ==");
    let busy = snapshot.counter("executor.busy_ns").unwrap_or(0);
    let span = snapshot.counter("executor.span_ns").unwrap_or(0);
    if span > 0 {
        println!(
            "executor utilization: {:.1}% over {} fan-outs ({} tasks)",
            busy as f64 / span as f64 * 100.0,
            snapshot.counter("executor.fanouts").unwrap_or(0),
            snapshot.counter("executor.tasks").unwrap_or(0),
        );
    } else {
        println!("executor utilization: n/a (no parallel fan-out ran)");
    }
    let stats = service.publisher().cache_stats();
    println!(
        "query cache: {} hits / {} misses / {} evictions ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate() * 100.0
    );
    if let Some(epoch_ns) = snapshot.histogram("stream.epoch_ns") {
        println!(
            "epoch latency: {} epochs, p50 ≤ {:.2} ms, p99 ≤ {:.2} ms, max {:.2} ms",
            epoch_ns.count,
            epoch_ns.quantile(0.50) as f64 / 1e6,
            epoch_ns.quantile(0.99) as f64 / 1e6,
            epoch_ns.max as f64 / 1e6,
        );
    }
    println!(
        "publisher: epoch {} published {} times, watermark block {}",
        snapshot.gauge("serve.publisher.epoch").unwrap_or(0),
        snapshot.counter("serve.publisher.publishes").unwrap_or(0),
        snapshot.gauge("stream.watermark").unwrap_or(0),
    );

    println!("\n== health report ==");
    let report = match service.query(&Query::Health).response {
        Response::Health(report) => report,
        other => unreachable!("health query answers with health, got {other:?}"),
    };
    print!("{}", report.render_text());
    println!(
        "verdict: {} after {} per-epoch evaluations",
        if report.healthy() { "HEALTHY" } else { "UNHEALTHY" },
        report.evaluations,
    );

    println!("\n== last epoch's span tree (flight recorder) ==");
    let records = obs::flight::dump();
    let mut children: std::collections::HashMap<Option<obs::SpanId>, Vec<usize>> =
        std::collections::HashMap::new();
    for (index, record) in records.iter().enumerate() {
        children.entry(record.parent).or_default().push(index);
    }
    let last_epoch = records
        .iter()
        .enumerate()
        .rev()
        .find(|(_, record)| record.name == "stream.epoch")
        .map(|(index, _)| index);
    match last_epoch {
        Some(root) => print_span_tree(&records, &children, root, 0),
        None => println!("  (no stream.epoch span retained)"),
    }

    let trace_path = std::path::Path::new("target").join("obs_dashboard_trace.json");
    std::fs::write(&trace_path, obs::trace::export_chrome_json())?;
    println!("\nChrome trace written to {} (open in Perfetto)", trace_path.display());

    println!("\n== recent events ==");
    for event in obs::recent_events(8) {
        println!("  #{:<4} {:<16} {}", event.seq, event.name, event.detail);
    }

    println!("\n== JSON export (first 400 chars) ==");
    let json = snapshot.render_json();
    println!("{}…", &json[..json.len().min(400)]);
    Ok(())
}
