//! Serve dashboard: ingest a world epoch by epoch while answering a scripted
//! query mix through the serving layer, printing an explorer-style dashboard
//! after each epoch — top wash collections, per-marketplace wash share, the
//! busiest account's dossier — and finally asserting that the served numbers
//! converged to exactly the batch (`full_study`) figures.
//!
//! ```text
//! cargo run --release --example serve_dashboard -- [epochs] [seed]
//! ```

use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade_serve::{Query, QueryService, Response};
use washtrade_stream::{StreamAnalyzer, StreamOptions};
use workload::{WorkloadConfig, World};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let world = World::generate(WorkloadConfig::small(seed))?;
    let plan = world.epoch_plan(epochs);
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };

    // The write side: a streaming analyzer. The read side: a QueryService
    // over the analyzer's publisher — the same handle any number of reader
    // threads could hold; here one scripted reader drives it between epochs.
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let service = QueryService::new(live.publisher());

    println!(
        "world: {} transactions over {} blocks, {} planted activities, {} epochs\n",
        world.chain.stats().transactions,
        world.chain.current_block_number().0 + 1,
        world.truth.len(),
        plan.len()
    );

    for budget in plan.budgets() {
        let Some(delta) = live.ingest_epoch(budget) else {
            break;
        };

        let Response::Stats(stats) = service.query(&Query::Stats).response else {
            unreachable!("stats query answers with stats")
        };
        println!(
            "── epoch {} (blocks {}..{}) ── {} suspects, {} activities, {:.2} ETH wash volume",
            stats.epoch,
            delta.first_block.0,
            delta.last_block.0,
            stats.suspect_nfts,
            stats.confirmed_activities,
            stats.wash_volume_eth,
        );

        if let Response::Collections(collections) =
            service.query(&Query::TopCollections(3)).response
        {
            for rollup in &collections {
                println!(
                    "   collection {}…  {:>3} NFTs  {:>3} activities  {:>10.2} ETH  patterns {:?}",
                    &rollup.collection.to_hex()[..10],
                    rollup.suspect_nfts,
                    rollup.activities,
                    rollup.volume_eth,
                    rollup.top_patterns,
                );
            }
        }
        if let Response::Marketplaces(rows) = service.query(&Query::Marketplaces).response {
            for row in rows.iter().take(3) {
                let share = row
                    .share_of_marketplace_volume
                    .map(|s| format!("{:.2}% of venue volume", s * 100.0))
                    .unwrap_or_else(|| "no venue total".to_string());
                println!(
                    "   {:<12} {:>3} activities  {:>10.2} ETH  ({})",
                    row.name, row.activities, row.volume_eth, share
                );
            }
        }
        // Account dossier of the current top mover's first colluder.
        if let Response::TopMovers(movers) = service.query(&Query::TopMovers(1)).response {
            if let Some((nft, _)) = movers.first() {
                let snapshot = service.snapshot();
                let colluder = snapshot.activities().find(|a| a.nft == *nft).map(|a| a.accounts[0]);
                if let Some(account) = colluder {
                    if let Response::Account(Some(dossier)) =
                        service.query(&Query::Account(account)).response
                    {
                        println!(
                            "   dossier {}…  {} activities on {} NFTs with {} collaborator(s), {:.2} ETH",
                            &account.to_hex()[..10],
                            dossier.activities,
                            dossier.nfts.len(),
                            dossier.collaborators.len(),
                            dossier.wash_volume.to_eth(),
                        );
                    }
                }
            }
        }
    }

    // Convergence: the served numbers equal the batch study's, bit for bit.
    let batch = analyze(input);
    let snapshot = service.snapshot();
    let stats = snapshot.stats();
    assert_eq!(
        stats.confirmed_activities,
        batch.detection.confirmed.len(),
        "served activity count != batch"
    );
    assert_eq!(
        stats.wash_volume_usd, batch.characterization.total_volume_usd,
        "served wash volume (USD) != batch characterization"
    );
    assert_eq!(
        stats.wash_volume_eth, batch.characterization.total_volume_eth,
        "served wash volume (ETH) != batch characterization"
    );
    assert_eq!(
        snapshot.marketplaces(),
        &batch.characterization.per_marketplace[..],
        "served marketplace rollups != batch Table II rows"
    );
    let cache = service.cache_stats();
    println!(
        "\nconverged with full_study: {} activities, {:.2} ETH — identical to batch analyze()",
        stats.confirmed_activities, stats.wash_volume_eth
    );
    println!(
        "query cache: {} hits / {} misses ({:.1}% hit rate)",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
    Ok(())
}
