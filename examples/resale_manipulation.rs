//! Reproduction of the paper's second case study (§VII, "NFT resell"): three
//! accounts move an NFT in a circle on OpenSea, pumping the price from
//! 0.66 ETH to 12.5 ETH, and finally sell it to an outside buyer for
//! 14.85 ETH — an investment return of more than 2000% on the 0.99 ETH the
//! wash trader originally paid.
//!
//! ```text
//! cargo run --example resale_manipulation
//! ```

use ethsim::{Chain, Timestamp, Wei};
use labels::LabelRegistry;
use marketplace::{presets, Marketplace, MarketplaceDirectory};
use oracle::PriceOracle;
use tokens::TokenRegistry;
use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Timestamp::from_secs(1_627_689_600); // Jul 31
    let mut chain = Chain::new(start);
    let mut tokens = TokenRegistry::new();
    let mut labels = LabelRegistry::new();
    let oracle = PriceOracle::paper_presets(start, 120, 11);

    let mut opensea =
        Marketplace::deploy(&mut chain, &mut tokens, &mut labels, presets::opensea())?;
    let mut directory = MarketplaceDirectory::new();
    directory.add(opensea.info());
    let collection = tokens.deploy_erc721(&mut chain, "og-art", "OG Art", true, start)?;
    let gas = Wei::from_gwei(45);

    // The original owner sells the NFT to the wash trader for 0.99 ETH.
    let artist = chain.create_eoa("artist")?;
    chain.fund(artist, Wei::from_eth(1.0));
    let (nft, mint_log) = tokens.erc721_mut(collection).unwrap().mint(artist);
    chain.submit(
        ethsim::TxRequest::contract_call(
            artist,
            collection,
            ethsim::Selector::of("mint(address)"),
            Wei::ZERO,
            90_000,
            gas,
        )
        .with_log(mint_log),
    )?;

    // Three colluding wallets, funded by a common account.
    let funder = chain.create_eoa("resale-funder")?;
    chain.fund(funder, Wei::from_eth(60.0));
    let wallets: Vec<_> =
        (0..3).map(|i| chain.create_eoa(&format!("resale-wallet-{i}")).unwrap()).collect();
    for wallet in &wallets {
        chain.submit(ethsim::TxRequest::ether_transfer(
            funder,
            *wallet,
            Wei::from_eth(18.0),
            gas,
        ))?;
    }
    chain.seal_block(start.plus_secs(3_600))?;
    let buy = opensea.execute_sale(
        &mut chain,
        &mut tokens,
        artist,
        wallets[0],
        nft,
        Wei::from_eth(0.99),
        gas,
    )?;
    println!("acquired the NFT for {:.2} ETH", buy.price.to_eth());

    // Circular wash trades over 64 days, escalating the price.
    let prices = [0.66, 4.5, 12.5];
    for (i, price) in prices.iter().enumerate() {
        let seller = wallets[i % 3];
        let buyer = wallets[(i + 1) % 3];
        chain.advance_to(start.plus_days(1 + (i as u64) * 21))?;
        let receipt = opensea.execute_sale(
            &mut chain,
            &mut tokens,
            seller,
            buyer,
            nft,
            Wei::from_eth(*price),
            gas,
        )?;
        println!(
            "wash trade {}: wallet {} -> wallet {} at {:>6.2} ETH",
            i + 1,
            i % 3,
            (i + 1) % 3,
            receipt.price.to_eth()
        );
    }

    // Three days after the last trade an outside collector takes the bait.
    let collector = chain.create_eoa("outside-collector")?;
    chain.fund(collector, Wei::from_eth(20.0));
    chain.advance_to(start.plus_days(66))?;
    let sale = opensea.execute_sale(
        &mut chain,
        &mut tokens,
        wallets[0],
        collector,
        nft,
        Wei::from_eth(14.85),
        gas,
    )?;
    println!("resold to an outside collector for {:.2} ETH\n", sale.price.to_eth());

    // Run the full pipeline and show the resale profitability analysis.
    let analysis = analyze(AnalysisInput {
        chain: &chain,
        labels: &labels,
        directory: &directory,
        oracle: &oracle,
    });
    println!("--- detection ---");
    for activity in &analysis.detection.confirmed {
        println!(
            "confirmed: {} accounts, {} internal trades, lifetime {} days, methods: zero-risk={} funder={:?} exit={:?}",
            activity.accounts().len(),
            activity.candidate.internal_edges.len(),
            activity.candidate.lifetime_days(),
            activity.methods.zero_risk,
            activity.methods.common_funder.map(|f| f.kind),
            activity.methods.common_exit.map(|e| e.kind),
        );
    }
    println!("\n--- resale profitability (§VI-B view) ---");
    println!("{}", report::render_resales(&analysis.resales));
    if let Some(outcome) = analysis.resales.outcomes.iter().find(|o| o.resold) {
        println!(
            "case study: bought at {:.2} ETH, resold at {:.2} ETH, net gain {:.2} ETH (${:.0})",
            outcome.buy_price_eth,
            outcome.resale_price_eth.unwrap_or(0.0),
            outcome.net_gain_eth.unwrap_or(0.0),
            outcome.net_gain_usd.unwrap_or(0.0)
        );
    }
    Ok(())
}
