//! Live monitor: build an epoch-sliced world, feed it through the streaming
//! analyzer epoch by epoch, and print the per-epoch delta table — new
//! suspects, dirty-NFT count, epoch wall time — followed by the proof that
//! the live report converged to exactly the batch result.
//!
//! ```text
//! cargo run --release --example live_monitor -- [epochs] [seed]
//! ```

use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade_stream::{StreamAnalyzer, StreamOptions};
use workload::{WorkloadConfig, World};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    // 1. A world plus an epoch plan whose boundaries cut through planted
    //    activities, so the incremental path is genuinely exercised.
    let world = World::generate(WorkloadConfig::small(seed))?;
    let plan = world.epoch_plan(epochs);
    println!(
        "world: {} transactions over {} blocks, {} planted activities, {} epochs\n",
        world.chain.stats().transactions,
        world.chain.current_block_number().0 + 1,
        world.truth.len(),
        plan.len()
    );

    // 2. Tail the chain epoch by epoch, printing each delta as it lands —
    //    what a monitor bolted onto a live node would display.
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    println!(
        "{:<6} {:>13} {:>9} {:>11} {:>12} {:>10} {:>10}",
        "epoch", "blocks", "transfers", "dirty NFTs", "new suspects", "confirmed", "wall time"
    );
    for budget in plan.budgets() {
        let Some(delta) = live.ingest_epoch(budget) else {
            break;
        };
        println!(
            "{:<6} {:>6}..{:<6} {:>9} {:>5} / {:<5} {:>12} {:>10} {:>8.2?}",
            delta.index,
            delta.first_block.0,
            delta.last_block.0,
            delta.transfers,
            delta.dirty_nfts,
            delta.total_nfts,
            delta.new_suspects.len(),
            delta.confirmed_total,
            delta.wall_time()
        );
    }

    // 3. The query API: the heaviest confirmed NFTs right now.
    println!("\ntop movers by confirmed wash volume:");
    for (nft, volume) in live.top_movers(5) {
        println!("  {:?} token #{:<6} {:>12.3} ETH", nft.contract, nft.token_id, volume.to_eth());
    }

    // 4. The headline invariant, demonstrated: the live report equals a
    //    batch analyze() over the same chain, bit for bit.
    let batch = analyze(input);
    let report = live.report();
    assert_eq!(report.detection, batch.detection, "live != batch detection");
    assert_eq!(report.refinement, batch.refinement, "live != batch refinement");
    assert_eq!(report.characterization, batch.characterization, "live != batch characterization");
    println!(
        "\nconverged: {} confirmed activities, Venn total {} — bit-identical to batch analyze()",
        report.detection.confirmed.len(),
        report.detection.venn.total()
    );
    Ok(())
}
