//! The full study: generate a paper-scaled world (a few percent of the
//! paper's 12,413 activities, with every proportion preserved), run the whole
//! pipeline, and print every table and figure of the evaluation.
//!
//! ```text
//! cargo run --release --example full_study [scale] [seed]
//! ```

use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade::report;
use workload::{WorkloadConfig, World};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("generating world (scale {scale}, seed {seed})…");
    let world = World::generate(WorkloadConfig::paper_scaled(seed, scale))?;
    eprintln!(
        "chain ready: {} transactions, {} planted activities",
        world.chain.stats().transactions,
        world.truth.len()
    );

    eprintln!("running analysis…");
    let analysis = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });

    println!("{}", report::render_table1(&analysis.table1));
    println!("{}", report::render_refinement(&analysis.refinement));
    println!("{}", report::render_fig2(&analysis.detection.venn));
    println!("{}", report::render_table2(&analysis.characterization));
    println!("{}", report::render_fig4(&analysis.characterization));
    println!("{}", report::render_fig5(&analysis.characterization));
    println!("{}", report::render_fig6_fig7(&analysis.characterization));
    println!("{}", report::render_serials(&analysis.characterization));
    println!("{}", report::render_table3(&analysis.rewards));
    println!("{}", report::render_resales(&analysis.resales));

    // Per-stage instrumentation: the perf trajectory of the pipeline, visible
    // from the command line on every run (threads = all cores by default).
    println!("{}", report::render_stage_metrics(&analysis.stage_metrics));

    // Ground-truth comparison, which the paper's authors could not do — one
    // benefit of reproducing the pipeline on a synthetic world.
    let planted: std::collections::HashSet<_> = world.truth.iter().map(|t| t.nft).collect();
    let detected: std::collections::HashSet<_> =
        analysis.detection.confirmed.iter().map(|a| a.nft()).collect();
    let recalled = planted.intersection(&detected).count();
    println!(
        "ground truth: {} planted, {} detected, recall {:.1}%, {} detections outside the planted set",
        planted.len(),
        detected.len(),
        recalled as f64 / planted.len().max(1) as f64 * 100.0,
        detected.difference(&planted).count()
    );
    Ok(())
}
