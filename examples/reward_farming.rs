//! Reproduction of the paper's first case study (§VII, "Token reward system
//! exploit"): two colluding accounts trade the same NFT back and forth on
//! LooksRare eight times for a huge volume, each sale priced just below the
//! previous one by the fee amount, then both claim LOOKS rewards. The paper
//! reports a net gain of roughly $1.1M for that operation.
//!
//! ```text
//! cargo run --example reward_farming
//! ```

use ethsim::{Chain, Timestamp, Wei};
use labels::LabelRegistry;
use marketplace::{presets, Marketplace, MarketplaceDirectory};
use oracle::PriceOracle;
use tokens::TokenRegistry;
use washtrade::pipeline::{analyze, AnalysisInput};
use washtrade::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Timestamp::from_secs(1_642_204_800); // mid-January 2022
    let mut chain = Chain::new(start);
    let mut tokens = TokenRegistry::new();
    let mut labels = LabelRegistry::new();
    let oracle = PriceOracle::paper_presets(start, 60, 7);

    // Deploy LooksRare (2% fee, LOOKS rewards) and the target collection.
    let mut looksrare =
        Marketplace::deploy(&mut chain, &mut tokens, &mut labels, presets::looksrare())?;
    let mut directory = MarketplaceDirectory::new();
    directory.add(looksrare.info());
    let collection = tokens.deploy_erc721(&mut chain, "meebits", "Meebits", true, start)?;

    // The two colluding accounts. A common funder seeds both wallets.
    let operator = chain.create_eoa("case-study-operator")?;
    let wallet_a = chain.create_eoa("case-study-wallet-a")?;
    let wallet_b = chain.create_eoa("case-study-wallet-b")?;
    chain.fund(operator, Wei::from_eth(2_100.0));
    let gas = Wei::from_gwei(60);
    chain.submit(ethsim::TxRequest::ether_transfer(
        operator,
        wallet_a,
        Wei::from_eth(1_000.0),
        gas,
    ))?;
    chain.submit(ethsim::TxRequest::ether_transfer(
        operator,
        wallet_b,
        Wei::from_eth(1_000.0),
        gas,
    ))?;
    chain.seal_block(start.plus_secs(3_600))?;

    // Mint the NFT to wallet A and wash it back and forth eight times.
    // Each sale is priced lower than the previous by exactly the fee charged
    // on that previous sale, as in the paper's case study (930.314 ETH down
    // to 690.314 ETH).
    let (nft, mint_log) = tokens.erc721_mut(collection).unwrap().mint(wallet_a);
    chain.submit(
        ethsim::TxRequest::contract_call(
            wallet_a,
            collection,
            ethsim::Selector::of("mint(address)"),
            Wei::ZERO,
            90_000,
            gas,
        )
        .with_log(mint_log),
    )?;
    let mut price = Wei::from_eth(930.314);
    let mut total_volume = Wei::ZERO;
    let pair = [(wallet_a, wallet_b), (wallet_b, wallet_a)];
    for i in 0..8 {
        let (seller, buyer) = pair[i % 2];
        chain.advance_to(chain.current_timestamp().plus_secs(420))?;
        let receipt =
            looksrare.execute_sale(&mut chain, &mut tokens, seller, buyer, nft, price, gas)?;
        total_volume += price;
        println!(
            "trade {}: {} -> {} at {:>9.3} ETH (fee {:>7.3} ETH)",
            i + 1,
            if seller == wallet_a { "A" } else { "B" },
            if buyer == wallet_a { "A" } else { "B" },
            receipt.price.to_eth(),
            receipt.fee.to_eth()
        );
        price = price.saturating_sub(receipt.fee);
    }
    println!("total wash-traded volume: {:.1} ETH\n", total_volume.to_eth());

    // The next day the rewards are distributed and both wallets claim.
    chain.advance_to(start.plus_days(1).plus_secs(7_200))?;
    looksrare.accrue_all_days();
    for wallet in [wallet_a, wallet_b] {
        let claim = looksrare.claim_rewards(&mut chain, &mut tokens, wallet, gas)?;
        println!(
            "claimed {:.2} LOOKS for {}",
            claim.token_amount as f64 / 1e18,
            if wallet == wallet_a { "wallet A" } else { "wallet B" }
        );
    }
    // Finally both wallets sweep the remaining ETH back to the operator.
    chain.advance_to(chain.current_timestamp().plus_secs(3_600))?;
    for wallet in [wallet_a, wallet_b] {
        let balance = chain.balance(wallet);
        chain.submit(ethsim::TxRequest::ether_transfer(
            wallet,
            operator,
            balance.saturating_sub(Wei::from_eth(0.2)),
            gas,
        ))?;
    }

    // Run the detection pipeline over the whole chain and show what it sees.
    let analysis = analyze(AnalysisInput {
        chain: &chain,
        labels: &labels,
        directory: &directory,
        oracle: &oracle,
    });
    println!("\n--- detection ---");
    println!("{}", report::render_fig2(&analysis.detection.venn));
    for activity in &analysis.detection.confirmed {
        println!(
            "confirmed activity on {}: {} accounts, volume {:.1} ETH, zero-risk: {}, funder: {:?}, exit: {:?}",
            activity.nft(),
            activity.accounts().len(),
            activity.candidate.volume.to_eth(),
            activity.methods.zero_risk,
            activity.methods.common_funder.map(|f| f.kind),
            activity.methods.common_exit.map(|e| e.kind),
        );
    }
    println!("\n--- profitability (Table III view) ---");
    println!("{}", report::render_table3(&analysis.rewards));
    if let Some(outcome) = analysis.rewards.outcomes.first() {
        println!(
            "case-study balance: rewards ${:.0} - fees ${:.0} = net ${:.0}",
            outcome.rewards_usd, outcome.fees_usd, outcome.balance_usd
        );
    }
    Ok(())
}
